// Fault module: sampler distributions and constraints, descriptor lowering,
// injection semantics, outcome classification, and campaign determinism.
#include <gtest/gtest.h>

#include <map>

#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"

namespace dnnfi::fault {
namespace {

using dnn::LayerKind;
using dnn::NetworkSpec;
using dnn::SpecBuilder;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(2, 8, 8), 4)
      .conv(3, 3, 1, 1).relu().maxpool(2, 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob(std::uint64_t seed = 1) {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, seed);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs(std::size_t n) {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < n; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(2, 8, 8));
    Rng rng = derive_stream(1234, s);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal() * 0.6);
    ex.label = 0;
    v.push_back(std::move(ex));
  }
  return v;
}

TEST(Sampler, BitAlwaysWithinWidth) {
  Sampler s(tiny_spec(), DType::kFloat16);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto f = s.sample(SiteClass::kDatapathLatch, rng);
    ASSERT_GE(f.bit, 0);
    ASSERT_LT(f.bit, 16);
  }
}

TEST(Sampler, ElementWithinFootprint) {
  Sampler s(tiny_spec(), DType::kFloat);
  Rng rng(2);
  for (const SiteClass cls : kAllSiteClasses) {
    for (int i = 0; i < 500; ++i) {
      const auto f = s.sample(cls, rng);
      const auto& fp = s.footprints()[f.mac_ordinal];
      switch (cls) {
        case SiteClass::kDatapathLatch:
        case SiteClass::kPsumReg:
          ASSERT_LT(f.element, fp.output_elems);
          ASSERT_LT(f.step, fp.steps);
          break;
        case SiteClass::kFilterSram:
          ASSERT_LT(f.element, fp.weight_elems);
          break;
        case SiteClass::kGlobalBuffer:
        case SiteClass::kImgReg:
          ASSERT_LT(f.element, fp.input_elems);
          break;
      }
    }
  }
}

TEST(Sampler, DatapathLayerWeightingFollowsMacs) {
  Sampler s(tiny_spec(), DType::kFloat16);
  Rng rng(3);
  std::map<std::size_t, int> hist;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    ++hist[s.sample(SiteClass::kDatapathLatch, rng).mac_ordinal];
  const auto& fp = s.footprints();
  const double total = static_cast<double>(accel::total_macs(fp));
  for (std::size_t l = 0; l < fp.size(); ++l) {
    const double expected = static_cast<double>(fp[l].macs) / total;
    const double got = hist[l] / static_cast<double>(n);
    EXPECT_NEAR(got, expected, 0.02) << "layer " << l;
  }
}

TEST(Sampler, FixedBitAndBlockConstraints) {
  Sampler s(tiny_spec(), DType::kFloat);
  Rng rng(4);
  SampleConstraint c;
  c.fixed_bit = 30;
  c.fixed_block = 2;
  for (int i = 0; i < 300; ++i) {
    const auto f = s.sample(SiteClass::kDatapathLatch, rng, c);
    ASSERT_EQ(f.bit, 30);
    ASSERT_EQ(f.block, 2);
  }
}

TEST(Sampler, FixedLatchConstraint) {
  Sampler s(tiny_spec(), DType::kFloat);
  Rng rng(5);
  SampleConstraint c;
  c.fixed_latch = accel::DatapathLatch::kProduct;
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(s.sample(SiteClass::kDatapathLatch, rng, c).latch,
              accel::DatapathLatch::kProduct);
}

TEST(Sampler, ImgRegScopeIsGeometricallyValid) {
  const auto spec = tiny_spec();
  Sampler s(spec, DType::kFloat16);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto f = s.sample(SiteClass::kImgReg, rng);
    const auto& fp = s.footprints()[f.mac_ordinal];
    ASSERT_LT(f.out_channel, fp.out_shape.c);
    ASSERT_LT(f.out_row, fp.out_shape.h);
    // The corrupted input row must feed the chosen output row.
    const auto& ls = spec.layers[fp.layer_index];
    const std::size_t iy = (f.element / fp.in_shape.w) % fp.in_shape.h;
    const auto lo = static_cast<std::ptrdiff_t>(f.out_row * ls.stride) -
                    static_cast<std::ptrdiff_t>(ls.pad);
    ASSERT_GE(static_cast<std::ptrdiff_t>(iy), lo);
    ASSERT_LE(static_cast<std::ptrdiff_t>(iy),
              lo + static_cast<std::ptrdiff_t>(ls.kernel) - 1);
  }
}

TEST(Lower, MapsEveryClassToTheRightHook) {
  const std::vector<std::size_t> macs = {0, 3, 6};
  FaultDescriptor f;
  f.mac_ordinal = 1;
  f.element = 42;
  f.step = 7;
  f.bit = 5;

  f.cls = SiteClass::kDatapathLatch;
  f.latch = accel::DatapathLatch::kProduct;
  auto a = lower(f, macs);
  EXPECT_EQ(a.layer, 3U);
  ASSERT_TRUE(a.faults.mac.has_value());
  EXPECT_EQ(a.faults.mac->site, dnn::MacSite::kProduct);
  EXPECT_EQ(a.faults.mac->out_index, 42U);

  f.cls = SiteClass::kPsumReg;
  a = lower(f, macs);
  ASSERT_TRUE(a.faults.mac.has_value());
  EXPECT_EQ(a.faults.mac->site, dnn::MacSite::kAccumulator);

  f.cls = SiteClass::kFilterSram;
  a = lower(f, macs);
  ASSERT_TRUE(a.faults.weight.has_value());
  EXPECT_EQ(a.faults.weight->weight_index, 42U);

  f.cls = SiteClass::kImgReg;
  f.out_channel = 2;
  f.out_row = 4;
  a = lower(f, macs);
  ASSERT_TRUE(a.faults.scoped_input.has_value());
  EXPECT_EQ(a.faults.scoped_input->out_channel, 2U);
  EXPECT_EQ(a.faults.scoped_input->out_row, 4U);

  f.cls = SiteClass::kGlobalBuffer;
  a = lower(f, macs);
  EXPECT_TRUE(a.flip_layer_input);
  EXPECT_EQ(a.input_index, 42U);
  EXPECT_EQ(a.input_op, fault::FaultOp::flip(5));
}

TEST(Lower, OrdinalOutOfRangeThrows) {
  FaultDescriptor f;
  f.mac_ordinal = 9;
  EXPECT_THROW(lower(f, {0, 1}), ContractViolation);
}

TEST(Outcome, Sdc1And5Criteria) {
  dnn::Prediction golden;
  golden.scores = {0.6, 0.2, 0.1, 0.05, 0.03, 0.02};
  dnn::Prediction same = golden;
  EXPECT_FALSE(classify(golden, same).sdc1);

  dnn::Prediction swapped;
  swapped.scores = {0.2, 0.6, 0.1, 0.05, 0.03, 0.02};
  const auto o = classify(golden, swapped);
  EXPECT_TRUE(o.sdc1);
  EXPECT_FALSE(o.sdc5);  // class 1 is in golden top-5

  dnn::Prediction outlier;
  outlier.scores = {0.1, 0.1, 0.1, 0.1, 0.1, 0.5};
  EXPECT_TRUE(classify(golden, outlier).sdc5);  // class 5 ranks 6th in golden
}

TEST(Outcome, ConfidenceCriteria) {
  dnn::Prediction golden;
  golden.scores = {0.50, 0.30, 0.20};
  dnn::Prediction drifted;
  drifted.scores = {0.56, 0.24, 0.20};  // +12% relative on top-1
  auto o = classify(golden, drifted);
  EXPECT_FALSE(o.sdc1);
  EXPECT_TRUE(o.sdc10);
  EXPECT_FALSE(o.sdc20);

  dnn::Prediction big;
  big.scores = {0.65, 0.2, 0.15};  // +30%
  o = classify(golden, big);
  EXPECT_TRUE(o.sdc20);
}

TEST(Outcome, NoConfidenceNetworksSkipConfidenceCriteria) {
  dnn::Prediction golden;
  golden.scores = {5.0, 1.0};
  golden.has_confidence = false;
  dnn::Prediction faulty;
  faulty.scores = {50.0, 1.0};
  faulty.has_confidence = false;
  const auto o = classify(golden, faulty);
  EXPECT_FALSE(o.sdc1);
  EXPECT_FALSE(o.sdc10);
  EXPECT_FALSE(o.sdc20);
}

TEST(Estimate, BinomialMath) {
  const auto e = estimate(25, 100);
  EXPECT_DOUBLE_EQ(e.p, 0.25);
  EXPECT_NEAR(e.ci95, 1.96 * std::sqrt(0.25 * 0.75 / 100.0), 1e-12);
  const auto zero = estimate(0, 0);
  EXPECT_EQ(zero.p, 0.0);
}

TEST(BlockEnds, LastNonSoftmaxLayerPerBlock) {
  const auto ends = block_end_layers(tiny_spec());
  const auto spec = tiny_spec();
  ASSERT_EQ(ends.size(), 3U);  // 2 conv blocks + 1 fc block
  EXPECT_EQ(spec.layers[ends[0]].kind, LayerKind::kMaxPool);
  EXPECT_EQ(spec.layers[ends[1]].kind, LayerKind::kMaxPool);
  EXPECT_EQ(spec.layers[ends[2]].kind, LayerKind::kFullyConnected);
}

TEST(Campaign, DeterministicAcrossRuns) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat16, tiny_inputs(3));
  CampaignOptions opt;
  opt.trials = 64;
  opt.seed = 99;
  const auto r1 = c.run(opt);
  const auto r2 = c.run(opt);
  ASSERT_EQ(r1.trials.size(), r2.trials.size());
  for (std::size_t i = 0; i < r1.trials.size(); ++i) {
    EXPECT_EQ(r1.trials[i].fault.element, r2.trials[i].fault.element);
    EXPECT_EQ(r1.trials[i].fault.bit, r2.trials[i].fault.bit);
    EXPECT_EQ(r1.trials[i].outcome.sdc1, r2.trials[i].outcome.sdc1);
    EXPECT_EQ(r1.trials[i].output_corruption, r2.trials[i].output_corruption);
  }
}

TEST(Campaign, SeedChangesTrials) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat16, tiny_inputs(2));
  CampaignOptions a, b;
  a.trials = b.trials = 32;
  a.seed = 1;
  b.seed = 2;
  const auto ra = c.run(a);
  const auto rb = c.run(b);
  int same = 0;
  for (std::size_t i = 0; i < ra.trials.size(); ++i)
    same += (ra.trials[i].fault.element == rb.trials[i].fault.element) ? 1 : 0;
  EXPECT_LT(same, 8);
}

TEST(Campaign, InputsRotateRoundRobin) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs(3));
  CampaignOptions opt;
  opt.trials = 9;
  const auto r = c.run(opt);
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_EQ(r.trials[i].input_index, i % 3);
}

TEST(Campaign, HighBitFlipsCauseMoreSdcThanLowBits) {
  // The core qualitative claim of the paper, at unit-test scale: flipping
  // the top exponent bit must corrupt more often than flipping mantissa
  // LSBs.
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs(4));
  CampaignOptions hi, lo;
  hi.trials = lo.trials = 200;
  hi.constraint.fixed_bit = 30;  // top exponent bit of float
  lo.constraint.fixed_bit = 2;   // mantissa LSB region
  const auto rh = c.run(hi);
  const auto rl = c.run(lo);
  EXPECT_GT(rh.sdc1().p + 1e-9, rl.sdc1().p);
  EXPECT_GT(rh.sdc1().p, 0.0);
}

TEST(Campaign, RecordsInjectionValues) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat16, tiny_inputs(2));
  CampaignOptions opt;
  opt.trials = 16;
  const auto r = c.run(opt);
  for (const auto& t : r.trials) {
    EXPECT_TRUE(t.record.applied) << t.fault.describe();
  }
}

TEST(Campaign, BlockDistancesMonotoneLayout) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs(2));
  CampaignOptions opt;
  opt.trials = 8;
  opt.record_block_distances = true;
  const auto r = c.run(opt);
  for (const auto& t : r.trials) {
    ASSERT_EQ(t.block_distance.size(), 3U);
    // Blocks before the injected one are untouched -> distance 0.
    for (int b = 0; b < t.fault.block - 1; ++b)
      EXPECT_EQ(t.block_distance[static_cast<std::size_t>(b)], 0.0);
  }
}

TEST(Campaign, DetectorFlagsObviousOutliers) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs(2));
  CampaignOptions opt;
  opt.trials = 150;
  opt.constraint.fixed_bit = 30;  // guarantees huge deviations
  opt.detector = [](int, double v) { return std::abs(v) > 1e6; };
  const auto r = c.run(opt);
  std::size_t detected = 0;
  for (const auto& t : r.trials) detected += t.detected ? 1U : 0U;
  EXPECT_GT(detected, 0U);
}

TEST(Campaign, RateHelpers) {
  CampaignResult r;
  r.trials.resize(4);
  r.trials[0].outcome.sdc1 = true;
  r.trials[1].outcome.sdc1 = true;
  r.trials[1].detected = true;
  EXPECT_DOUBLE_EQ(r.sdc1().p, 0.5);
  const auto cond = r.rate_if(
      [](const TrialRecord& t) { return t.outcome.sdc1; },
      [](const TrialRecord& t) { return t.detected; });
  EXPECT_DOUBLE_EQ(cond.p, 0.5);
  EXPECT_EQ(cond.n, 2U);
}

TEST(ProfileRanges, BoundsContainObservedActivations) {
  const auto spec = tiny_spec();
  const auto blob = tiny_blob();
  auto inputs = tiny_inputs(6);
  const dnn::ExampleSource src = [&inputs](std::uint64_t i) {
    return inputs[i % inputs.size()];
  };
  const auto ranges = profile_block_ranges(spec, blob, DType::kFloat, src, 0, 6);
  ASSERT_EQ(ranges.size(), 3U);
  for (const auto& r : ranges) EXPECT_LE(r.lo, r.hi);

  // The campaign's golden ranges over the same inputs must agree.
  Campaign c(spec, blob, DType::kFloat, std::move(inputs));
  const auto& gr = c.golden_block_ranges();
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(gr[b].lo, ranges[b].lo);
    EXPECT_DOUBLE_EQ(gr[b].hi, ranges[b].hi);
  }
}

}  // namespace
}  // namespace dnnfi::fault
