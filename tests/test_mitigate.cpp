// Mitigation techniques: SED learning/detection/metrics, SLH design-space
// model, and the ECC comparison model.
#include <gtest/gtest.h>

#include <cmath>

#include "dnnfi/mitigate/ecc.h"
#include "dnnfi/mitigate/sed.h"
#include "dnnfi/mitigate/slh.h"

namespace dnnfi::mitigate {
namespace {

TEST(Sed, CushionWidensBounds) {
  SedDetector d({{-10.0, 20.0}}, 0.10);
  EXPECT_FALSE(d.anomalous(1, -10.9));  // within -11
  EXPECT_TRUE(d.anomalous(1, -11.1));
  EXPECT_FALSE(d.anomalous(1, 21.9));  // within 22
  EXPECT_TRUE(d.anomalous(1, 22.1));
}

TEST(Sed, NanIsAlwaysAnomalous) {
  SedDetector d({{-1.0, 1.0}}, 0.10);
  EXPECT_TRUE(d.anomalous(1, std::nan("")));
}

TEST(Sed, PerBlockBounds) {
  SedDetector d({{-1.0, 1.0}, {-100.0, 100.0}}, 0.0);
  EXPECT_TRUE(d.anomalous(1, 50.0));
  EXPECT_FALSE(d.anomalous(2, 50.0));
  EXPECT_THROW(d.anomalous(3, 0.0), ContractViolation);
  EXPECT_THROW(d.anomalous(0, 0.0), ContractViolation);
}

TEST(Sed, PredicateAdapterMatchesMethod) {
  SedDetector d({{-2.0, 2.0}}, 0.10);
  const auto pred = d.as_predicate();
  for (double v : {-3.0, -1.0, 0.0, 2.1, 2.3}) {
    EXPECT_EQ(pred(1, v), d.anomalous(1, v));
  }
}

TEST(Sed, EvaluationMatchesPaperDefinitions) {
  fault::CampaignResult r;
  r.trials.resize(10);
  // 4 SDCs, 3 of them detected; 6 benign, 1 falsely detected.
  for (int i = 0; i < 4; ++i) r.trials[static_cast<std::size_t>(i)].outcome.sdc1 = true;
  r.trials[0].detected = r.trials[1].detected = r.trials[2].detected = true;
  r.trials[5].detected = true;  // benign false alarm
  const auto ev = evaluate_sed(r);
  EXPECT_DOUBLE_EQ(ev.recall.p, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(ev.precision.p, 1.0 - 1.0 / 10.0);
  EXPECT_EQ(ev.detections, 4U);
  EXPECT_EQ(ev.sdc_count, 4U);
}

TEST(Slh, Table9DesignPoints) {
  const auto& d = latch_designs();
  ASSERT_EQ(d.size(), 4U);
  EXPECT_EQ(d[0].name, "Baseline");
  EXPECT_DOUBLE_EQ(d[1].area, 1.15);
  EXPECT_DOUBLE_EQ(d[1].fit_reduction, 6.3);
  EXPECT_DOUBLE_EQ(d[2].area, 2.0);
  EXPECT_DOUBLE_EQ(d[2].fit_reduction, 37.0);
  EXPECT_DOUBLE_EQ(d[3].area, 3.5);
  EXPECT_DOUBLE_EQ(d[3].fit_reduction, 1e6);
}

TEST(Slh, PerfectCurveSortsMostSensitiveFirst) {
  const BitProfile fit = {0.1, 5.0, 0.2, 0.0};
  const auto curve = perfect_protection_curve(fit);
  ASSERT_EQ(curve.size(), 5U);
  EXPECT_DOUBLE_EQ(curve[0].fit_removed_fraction, 0.0);
  // First protected latch is the 5.0 one: 5/5.3 of the FIT.
  EXPECT_NEAR(curve[1].fit_removed_fraction, 5.0 / 5.3, 1e-12);
  EXPECT_DOUBLE_EQ(curve[4].fit_removed_fraction, 1.0);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].fit_removed_fraction, curve[i - 1].fit_removed_fraction);
}

TEST(Slh, BetaHigherForSkewedProfiles) {
  // Uniform sensitivity -> low beta; one dominant latch -> high beta.
  BitProfile uniform(16, 1.0);
  BitProfile skewed(16, 0.01);
  skewed[3] = 10.0;
  const double b_uniform = fit_beta(perfect_protection_curve(uniform));
  const double b_skewed = fit_beta(perfect_protection_curve(skewed));
  EXPECT_GT(b_skewed, b_uniform);
  EXPECT_GT(b_skewed, 3.0);
}

TEST(Slh, SingleTechniqueCannotExceedItsStrength) {
  const BitProfile fit = {1.0, 1.0, 1.0, 1.0};
  const auto& rcc = latch_designs()[1];
  const auto plan = harden_single(fit, rcc, 100.0);
  EXPECT_FALSE(plan.feasible);  // RCC alone gives at most 6.3x
  EXPECT_NEAR(plan.achieved_reduction, 6.3, 1e-9);
  EXPECT_NEAR(plan.area_overhead, 0.15, 1e-9);  // everything protected
}

TEST(Slh, SingleTechniqueStopsAtTarget) {
  // One dominant latch: protecting it alone should reach a 2x reduction.
  BitProfile fit = {100.0, 1.0, 1.0, 1.0};
  const auto& tmr = latch_designs()[3];
  const auto plan = harden_single(fit, tmr, 2.0);
  EXPECT_TRUE(plan.feasible);
  // Only the dominant latch hardened: overhead = 2.5/4.
  EXPECT_NEAR(plan.area_overhead, 2.5 / 4.0, 1e-9);
  EXPECT_GE(plan.achieved_reduction, 2.0);
}

TEST(Slh, MultiMeetsTargetsSingleCannot) {
  BitProfile fit(32, 0.0);
  for (std::size_t i = 0; i < fit.size(); ++i)
    fit[i] = std::exp(-static_cast<double>(i));  // strong asymmetry
  const auto plan = harden_multi(fit, 100.0);
  EXPECT_TRUE(plan.feasible);
  EXPECT_GE(plan.achieved_reduction, 100.0);
  EXPECT_LT(plan.area_overhead, 0.6);
}

TEST(Slh, MultiIsNoWorseThanAnySingleTechnique) {
  BitProfile fit(16, 0.0);
  for (std::size_t i = 0; i < fit.size(); ++i)
    fit[i] = 1.0 / (1.0 + static_cast<double>(i * i));
  for (const double target : {2.0, 5.0, 20.0}) {
    const auto multi = harden_multi(fit, target);
    ASSERT_TRUE(multi.feasible);
    for (std::size_t d = 1; d < latch_designs().size(); ++d) {
      const auto single = harden_single(fit, latch_designs()[d], target);
      if (single.feasible)
        EXPECT_LE(multi.area_overhead, single.area_overhead + 1e-9)
            << "target " << target << " design " << latch_designs()[d].name;
    }
  }
}

TEST(Slh, MultiOverheadMonotoneInTarget) {
  BitProfile fit(24, 0.0);
  for (std::size_t i = 0; i < fit.size(); ++i)
    fit[i] = std::exp(-0.5 * static_cast<double>(i));
  double prev = -1;
  for (const double target : {1.5, 3.0, 10.0, 50.0, 200.0}) {
    const auto plan = harden_multi(fit, target);
    EXPECT_GE(plan.area_overhead, prev);
    prev = plan.area_overhead;
  }
}

TEST(Slh, ZeroSensitivityBitsAreNeverHardened) {
  BitProfile fit = {5.0, 0.0, 0.0, 0.0};
  const auto plan = harden_multi(fit, 1000.0);
  EXPECT_TRUE(plan.feasible);
  for (std::size_t i = 1; i < fit.size(); ++i)
    EXPECT_EQ(plan.design_per_bit[i], 0U) << "bit " << i;
}

TEST(Ecc, SecDedGeometry) {
  EXPECT_EQ(secded(64).check_bits, 8U);   // 7 Hamming + 1 parity
  EXPECT_EQ(secded(32).check_bits, 7U);
  EXPECT_EQ(secded(16).check_bits, 6U);
  EXPECT_EQ(secded(8).check_bits, 5U);
  EXPECT_NEAR(secded(64).overhead_fraction(), 0.125, 1e-12);
  // Narrow words pay proportionally more — the paper's argument against
  // naive ECC on small per-PE buffers.
  EXPECT_GT(secded(16).overhead_fraction(), secded(64).overhead_fraction());
}

TEST(Ecc, ResidualFitIsSecondOrderSmall) {
  const double residual = ecc_residual_fit(100.0, 16, 24.0);
  EXPECT_GT(residual, 0.0);
  EXPECT_LT(residual, 1e-4);  // double-hit in one word within a day: tiny
  EXPECT_THROW(ecc_residual_fit(1.0, 16, 0.0), ContractViolation);
}

}  // namespace
}  // namespace dnnfi::mitigate
