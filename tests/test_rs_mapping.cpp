// Row-stationary mapping model: conservation and sanity invariants.
#include <gtest/gtest.h>

#include "dnnfi/accel/rs_mapping.h"
#include "dnnfi/dnn/zoo.h"

namespace dnnfi::accel {
namespace {

TEST(RsMapping, MapsEveryMacLayer) {
  for (const auto id : dnn::zoo::kAllNetworks) {
    const auto spec = dnn::zoo::network_spec(id);
    const auto mappings = map_network(spec, 1344);
    EXPECT_EQ(mappings.size(), analyze(spec).size());
  }
}

TEST(RsMapping, UtilizationIsAProbability) {
  for (const auto id : dnn::zoo::kAllNetworks) {
    const auto mappings = map_network(dnn::zoo::network_spec(id), 1344);
    for (const auto& m : mappings) {
      EXPECT_GT(m.utilization, 0.0) << "block " << m.block;
      EXPECT_LE(m.utilization, 1.0 + 1e-9) << "block " << m.block;
      EXPECT_GT(m.cycles, 0U);
      EXPECT_GE(m.passes, 1U);
      EXPECT_LE(m.active_pes, 1344U);
    }
  }
}

TEST(RsMapping, ConvSetGeometryMatchesKernelAndOutput) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto mappings = map_network(spec, 1344);
  const auto fp = analyze(spec);
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (!mappings[i].is_conv) continue;
    const auto& ls = spec.layers[fp[i].layer_index];
    EXPECT_EQ(mappings[i].pe_set_height, ls.kernel);
    EXPECT_EQ(mappings[i].pe_set_width, fp[i].out_shape.h);
  }
}

TEST(RsMapping, DramTrafficIsCompulsory) {
  // Every word moves at least once: DRAM traffic equals the layer's total
  // unique footprint under this perfect-reuse model.
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kAlexNetS);
  const auto mappings = map_network(spec, 1344);
  const auto fp = analyze(spec);
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    EXPECT_EQ(mappings[i].dram_reads, fp[i].input_elems + fp[i].weight_elems);
    EXPECT_EQ(mappings[i].dram_writes, fp[i].output_elems);
  }
}

TEST(RsMapping, RegisterTrafficIsTwoPerMac) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kNiNS);
  const auto mappings = map_network(spec, 1344);
  const auto fp = analyze(spec);
  for (std::size_t i = 0; i < mappings.size(); ++i)
    EXPECT_EQ(mappings[i].reg_accesses, 2 * fp[i].macs);
}

TEST(RsMapping, ReuseHierarchyHoldsInTraffic) {
  // REG accesses >> SRAM accesses >= DRAM reads for conv layers: the same
  // hierarchy the buffer FIT analysis relies on.
  const auto mappings =
      map_network(dnn::zoo::network_spec(dnn::zoo::NetworkId::kAlexNetS), 1344);
  const auto s = summarize(mappings);
  EXPECT_GT(s.reg_traffic, s.sram_traffic);
  EXPECT_GT(s.sram_traffic, s.dram_traffic);
}

TEST(RsMapping, SmallerArrayNeedsMorePassesAndCycles) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto big = summarize(map_network(spec, 1344));
  const auto small = summarize(map_network(spec, 168));
  EXPECT_GE(small.total_cycles, big.total_cycles);
}

TEST(RsMapping, FcLayersStreamWeightsOnce) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto mappings = map_network(spec, 1344);
  const auto fp = analyze(spec);
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (mappings[i].is_conv) continue;
    EXPECT_EQ(mappings[i].sram_accesses, fp[i].weight_elems);
  }
}

TEST(RsMapping, RejectsZeroPes) {
  EXPECT_THROW(map_network(dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet), 0),
               ContractViolation);
}

TEST(RsSummary, CyclesAreSumOfLayers) {
  const auto mappings =
      map_network(dnn::zoo::network_spec(dnn::zoo::NetworkId::kNiNS), 1344);
  const auto s = summarize(mappings);
  std::size_t manual = 0;
  for (const auto& m : mappings) manual += m.cycles;
  EXPECT_EQ(s.total_cycles, manual);
  EXPECT_GT(s.avg_utilization, 0.0);
  EXPECT_LE(s.avg_utilization, 1.0);
}

}  // namespace
}  // namespace dnnfi::accel
