// The stratified-sampling contract, locked down from three sides:
//  - the StratumSet is a true partition of the uniform sampler's site
//    population (weights sum to 1, every uniform draw maps into exactly one
//    stratum at its advertised probability, conditional draws stay inside
//    their stratum) for BOTH accelerator geometries;
//  - the Horvitz–Thompson estimate driven through the real adaptive
//    allocator is unbiased against an exhaustively enumerated synthetic
//    ground truth, across 50 independent seeds;
//  - a stratified campaign is byte-identical across thread counts and
//    across kill/resume/merge boundaries, exactly like the uniform shards.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dnnfi/accel/accelerator.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/fault/stats_io.h"
#include "dnnfi/fault/strata.h"

namespace dnnfi::fault {
namespace {

using dnn::SpecBuilder;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

dnn::NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(2, 8, 8), 4)
      .conv(3, 3, 1, 1).relu().maxpool(2, 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob() {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, 1);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs(std::size_t n) {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < n; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(2, 8, 8));
    Rng rng = derive_stream(1234, s);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal() * 0.6);
    ex.label = 0;
    v.push_back(std::move(ex));
  }
  return v;
}

Campaign tiny_campaign(DType dt) {
  return Campaign(tiny_spec(), tiny_blob(), dt, tiny_inputs(3));
}

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("dnnfi_test_" + stem + "_" + std::to_string(::getpid()) + ".ckpt"))
      .string();
}

struct TempFile {
  explicit TempFile(const std::string& stem) : path(temp_path(stem)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string path;
};

// ---------------------------------------------------------------------------
// Partition checks: the StratumSet covers the exact uniform-draw population,
// on the paper's Eyeriss geometry and on the systolic array alike.
// ---------------------------------------------------------------------------

void check_partition(const Sampler& sampler, SiteClass site) {
  const StratumSet set(sampler, site);
  ASSERT_GT(set.size(), 0u);

  // Weights are positive, exact probabilities, and sum to 1.
  double sum = 0;
  std::set<std::string> ids;
  for (std::size_t h = 0; h < set.size(); ++h) {
    EXPECT_GT(set.weight(h), 0.0) << set.stratum(h).id();
    sum += set.weight(h);
    EXPECT_TRUE(ids.insert(set.stratum(h).id()).second)
        << "duplicate stratum id " << set.stratum(h).id();
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // Every uniform draw of the base sampler lands in exactly one stratum,
  // and the empirical frequencies match the advertised weights (within a
  // 5-sigma binomial band — deterministic, the seed is fixed).
  constexpr std::size_t kDraws = 20000;
  std::vector<std::size_t> count(set.size(), 0);
  Rng rng = derive_stream(99, 0);
  for (std::size_t t = 0; t < kDraws; ++t) {
    const FaultDescriptor fd = sampler.sample(site, rng);
    const std::size_t h = set.index_of(fd);
    ASSERT_LT(h, set.size());
    ++count[h];
  }
  for (std::size_t h = 0; h < set.size(); ++h) {
    const double w = set.weight(h);
    const double freq = static_cast<double>(count[h]) / kDraws;
    const double sigma = std::sqrt(w * (1.0 - w) / kDraws);
    EXPECT_NEAR(freq, w, 5.0 * sigma + 1e-9)
        << set.stratum(h).id() << " drawn " << count[h] << "/" << kDraws;
  }

  // Conditional draws stay inside their stratum.
  for (std::size_t h = 0; h < set.size(); ++h) {
    Rng sub = derive_stream(7, h);
    for (int rep = 0; rep < 8; ++rep) {
      const FaultDescriptor fd = set.sample(h, sub);
      EXPECT_EQ(set.index_of(fd), h) << set.stratum(h).id();
    }
  }
}

TEST(StratifiedSampling, PartitionEyerissDatapath) {
  const Sampler s(tiny_spec(), DType::kFloat16);
  check_partition(s, SiteClass::kDatapathLatch);
}

TEST(StratifiedSampling, PartitionEyerissBuffer) {
  const Sampler s(tiny_spec(), DType::kFloat16);
  check_partition(s, SiteClass::kFilterSram);
}

TEST(StratifiedSampling, PartitionSystolicDatapath) {
  accel::AcceleratorConfig cfg;
  cfg.kind = accel::AcceleratorKind::kSystolic;
  cfg.rows = 4;
  cfg.cols = 4;
  const auto model = accel::make_accelerator(cfg);
  const Sampler s(tiny_spec(), DType::kFloat16, *model);
  check_partition(s, SiteClass::kDatapathLatch);
}

TEST(StratifiedSampling, PartitionSystolicBuffer) {
  accel::AcceleratorConfig cfg;
  cfg.kind = accel::AcceleratorKind::kSystolic;
  cfg.rows = 4;
  cfg.cols = 4;
  const auto model = accel::make_accelerator(cfg);
  const Sampler s(tiny_spec(), DType::kFloat16, *model);
  check_partition(s, SiteClass::kFilterSram);
}

// ---------------------------------------------------------------------------
// HT unbiasedness against enumerated ground truth. A synthetic population
// with exactly known per-stratum rates is driven through the *real*
// controller (next_allocation), so the check covers the estimator under the
// adaptive, data-dependent allocation it actually runs with — the regime
// where a naive (optional-stopping-blind) estimator goes biased.
// ---------------------------------------------------------------------------

struct SyntheticStratum {
  double weight;       // uniform-draw probability W_h
  std::uint64_t pop;   // enumerated population size m_h
  std::uint64_t sdc;   // sites (of pop) whose strike is an SDC
};

// Truth = sum W_h * sdc_h / pop_h, exact by enumeration.
double enumerate_truth(const std::vector<SyntheticStratum>& pop) {
  double truth = 0;
  for (const SyntheticStratum& s : pop)
    truth += s.weight * static_cast<double>(s.sdc) / static_cast<double>(s.pop);
  return truth;
}

// One full adaptive campaign over the synthetic population: stratum h's
// trial t draws site derive_stream(seed, h, t).below(pop) — a hit iff the
// site index falls among the enumerated SDC sites — mirroring the real
// campaign's substream keying exactly.
std::vector<StratumCounts> simulate(const std::vector<SyntheticStratum>& pop,
                                    const StratifiedOptions& opt,
                                    std::uint64_t budget, std::uint64_t seed) {
  std::vector<StratumCounts> s(pop.size());
  for (std::size_t h = 0; h < pop.size(); ++h) s[h].weight = pop[h].weight;
  std::uint64_t spent = 0;
  while (spent < budget) {
    const std::vector<std::uint64_t> plan =
        next_allocation(s, opt, budget - spent);
    if (plan.empty()) break;
    for (std::size_t h = 0; h < pop.size(); ++h) {
      for (std::uint64_t k = 0; k < plan[h]; ++k) {
        Rng rng = derive_stream(seed, h, s[h].n);
        if (rng.below(pop[h].pop) < pop[h].sdc) ++s[h].hits;
        ++s[h].n;
        ++spent;
      }
    }
  }
  return s;
}

std::vector<SyntheticStratum> synthetic_population() {
  // Rare-event shape, like the paper's Fig 4: a few hot strata carry nearly
  // all the SDC probability, most strata are dead or nearly so.
  return {
      {0.02, 16, 8},   // hot: p = 0.5
      {0.03, 32, 8},   // p = 0.25
      {0.05, 64, 4},   // p = 0.0625
      {0.10, 128, 4},  // p = 0.03125
      {0.10, 256, 2},  // rare: p ~ 0.0078
      {0.15, 512, 1},  // very rare
      {0.15, 64, 0},   // dead
      {0.20, 64, 0},   // dead
      {0.12, 32, 0},   // dead
      {0.08, 16, 0},   // dead
  };
}

TEST(StratifiedSampling, HTUnbiasedAcross50Seeds) {
  const std::vector<SyntheticStratum> pop = synthetic_population();
  const double truth = enumerate_truth(pop);
  ASSERT_GT(truth, 0.0);

  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0;  // budget-bound: every seed spends the same trials

  constexpr int kSeeds = 50;
  constexpr std::uint64_t kBudget = 2000;
  double mean = 0;
  double m2 = 0;
  int covered = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::vector<StratumCounts> s = simulate(pop, opt, kBudget, seed);
    const StratifiedEstimate e = stratified_estimate(s);
    if (e.est.lo <= truth && truth <= e.est.hi) ++covered;
    const double d = e.est.p - mean;
    mean += d / static_cast<double>(seed);
    m2 += d * (e.est.p - mean);
  }
  const double sd = std::sqrt(m2 / (kSeeds - 1));
  const double sem = sd / std::sqrt(static_cast<double>(kSeeds));

  // Unbiasedness: the mean of 50 independent HT estimates sits within 4
  // standard errors of the enumerated truth. A controller that freezes
  // unlucky all-miss pilots (the raw-Neyman-score bug) fails this by many
  // sigma — the estimate collapses toward the hot strata only.
  EXPECT_NEAR(mean, truth, 4.0 * sem)
      << "truth " << truth << " mean " << mean << " sem " << sem;
  // Nominal-95% intervals must actually cover across the seeds.
  EXPECT_GE(covered, 45) << "covered " << covered << "/50, truth " << truth;
}

TEST(StratifiedSampling, HTExactOnDeterministicStrata) {
  // All-hit and all-miss strata: the point estimate must equal the
  // enumerated truth exactly — no continuity-correction leakage into p̂.
  const std::vector<SyntheticStratum> pop = {
      {0.25, 8, 8},  // always SDC
      {0.50, 8, 0},  // never
      {0.25, 8, 8},  // always
  };
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 16;
  opt.target_ci = 0;
  const std::vector<StratumCounts> s = simulate(pop, opt, 120, 3);
  const StratifiedEstimate e = stratified_estimate(s);
  EXPECT_DOUBLE_EQ(e.est.p, 0.5);
  EXPECT_LE(e.est.lo, 0.5);
  EXPECT_GE(e.est.hi, 0.5);
}

// ---------------------------------------------------------------------------
// Determinism: thread-count invariance and kill/resume/merge byte identity
// for the real stratified campaign.
// ---------------------------------------------------------------------------

CampaignOptions stratified_options() {
  CampaignOptions opt;
  opt.sampler = SamplerMode::kStratified;
  opt.trials = 240;  // budget
  opt.seed = 77;
  opt.record_block_distances = true;
  opt.detector = [](int, double v) { return v > 40.0 || v < -40.0; };
  opt.stratified.pilot = 2;
  opt.stratified.round = 48;
  opt.stratified.target_ci = 0;  // budget-bound pins the trial count
  return opt;
}

void expect_same_result(const StratifiedResult& a, const StratifiedResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.masked_exits, b.masked_exits);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.pooled.bytes(), b.pooled.bytes());
  ASSERT_EQ(a.per_stratum.size(), b.per_stratum.size());
  for (std::size_t h = 0; h < a.per_stratum.size(); ++h)
    EXPECT_EQ(a.per_stratum[h].bytes(), b.per_stratum[h].bytes())
        << a.strata[h].id();
}

TEST(StratifiedSampling, ThreadCountInvariance) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  CampaignOptions opt = stratified_options();

  ThreadPool serial(0);
  opt.pool = &serial;
  const StratifiedResult base = c.run_stratified(opt);
  ASSERT_TRUE(base.complete);
  ASSERT_EQ(base.trials, opt.trials);

  for (const std::size_t workers : {2UL, 8UL}) {
    ThreadPool pool(workers);
    opt.pool = &pool;
    const StratifiedResult r = c.run_stratified(opt);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_same_result(base, r);
  }
}

std::string stats_text(const Campaign& c, const CampaignOptions& opt,
                       const StratifiedResult& r) {
  StratifiedStatsSection section;
  for (std::size_t h = 0; h < r.strata.size(); ++h) {
    StratumStats st;
    st.id = r.strata[h].id();
    st.weight = r.weights[h];
    st.trials = r.per_stratum[h].trials();
    st.sdc1 = r.per_stratum[h].sdc1().hits;
    st.sdc5 = r.per_stratum[h].sdc5().hits;
    st.sdc10 = r.per_stratum[h].sdc10().hits;
    st.sdc20 = r.per_stratum[h].sdc20().hits;
    section.strata.push_back(std::move(st));
  }
  StatsAxes axes;
  axes.sampler = sampler_id(opt);
  std::ostringstream os;
  write_stats(os, c.fingerprint(opt), r.pooled, r.masked_exits, {}, axes,
              &section);
  return os.str();
}

TEST(StratifiedSampling, KillResumeMergeByteIdentical) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  CampaignOptions opt = stratified_options();
  ThreadPool serial(0);
  opt.pool = &serial;

  // The uninterrupted reference run.
  const StratifiedResult once = c.run_stratified(opt);
  ASSERT_TRUE(once.complete);

  // Kill after ~70 new trials (mid-round), then resume to completion.
  TempFile ckpt("stratified_resume");
  ShardSpec stop;
  stop.checkpoint = ckpt.path;
  stop.batch = 16;
  stop.stop_after = 70;
  const StratifiedResult partial = c.run_stratified(opt, stop);
  EXPECT_FALSE(partial.complete);
  EXPECT_LT(partial.trials, opt.trials);

  ShardSpec resume;
  resume.checkpoint = ckpt.path;
  resume.batch = 16;
  const StratifiedResult resumed = c.run_stratified(opt, resume);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_TRUE(resumed.complete);
  expect_same_result(once, resumed);

  // Stats written from the resumed result are byte-identical to the
  // uninterrupted run's.
  EXPECT_EQ(stats_text(c, opt, once), stats_text(c, opt, resumed));

  // Merge leg: the final checkpoint on disk carries the same per-stratum
  // state the in-memory result does — what `dnnfi_campaign merge` re-emits.
  const ShardCheckpoint ck = load_shard_checkpoint(ckpt.path);
  EXPECT_EQ(ck.fingerprint, c.fingerprint(opt));
  EXPECT_EQ(ck.sampler, sampler_id(opt));
  ASSERT_TRUE(ck.stratified.has_value());
  EXPECT_EQ(ck.acc.bytes(), once.pooled.bytes());
  ASSERT_EQ(ck.stratified->strata.size(), once.per_stratum.size());
  for (std::size_t h = 0; h < once.per_stratum.size(); ++h) {
    EXPECT_EQ(ck.stratified->strata[h].id, once.strata[h].id());
    EXPECT_EQ(ck.stratified->strata[h].acc.bytes(),
              once.per_stratum[h].bytes())
        << once.strata[h].id();
  }
}

TEST(StratifiedSampling, ResumeAcrossThreadCounts) {
  // Stop under one pool size, resume under another: still byte-identical.
  const Campaign c = tiny_campaign(DType::kFloat16);
  CampaignOptions opt = stratified_options();

  ThreadPool serial(0);
  opt.pool = &serial;
  const StratifiedResult once = c.run_stratified(opt);

  TempFile ckpt("stratified_xthread");
  ThreadPool pool2(2);
  opt.pool = &pool2;
  ShardSpec stop;
  stop.checkpoint = ckpt.path;
  stop.batch = 16;
  stop.stop_after = 90;
  const StratifiedResult partial = c.run_stratified(opt, stop);
  EXPECT_FALSE(partial.complete);

  ThreadPool pool8(8);
  opt.pool = &pool8;
  ShardSpec resume;
  resume.checkpoint = ckpt.path;
  resume.batch = 16;
  const StratifiedResult resumed = c.run_stratified(opt, resume);
  ASSERT_TRUE(resumed.complete);
  expect_same_result(once, resumed);
}

}  // namespace
}  // namespace dnnfi::fault
