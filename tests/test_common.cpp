// Unit tests for dnnfi/common: contracts, RNG streams, thread pool,
// parallel_for, tables, env parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "dnnfi/common/env.h"
#include "dnnfi/common/expects.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/common/table.h"
#include "dnnfi/common/thread_pool.h"

namespace dnnfi {
namespace {

TEST(Expects, ThrowsOnViolation) {
  EXPECT_THROW(DNNFI_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(DNNFI_EXPECTS(true));
  EXPECT_THROW(DNNFI_ENSURES(1 == 2), ContractViolation);
}

TEST(Expects, MessageNamesExpressionAndLocation) {
  try {
    DNNFI_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(msg.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  double lo = 1, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(17);
  std::vector<int> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[r.below(10)];
  for (const int h : hist) {
    EXPECT_NEAR(h, n / 10, n / 10 / 5);  // within 20% of expectation
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.between(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasUnitMoments) {
  Rng r(23);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, DerivedStreamsAreIndependentAndStable) {
  Rng a = derive_stream(99, 0);
  Rng b = derive_stream(99, 1);
  Rng a2 = derive_stream(99, 0);
  EXPECT_NE(a(), b());
  Rng a3 = derive_stream(99, 0);
  (void)a2();
  // Same (seed, stream) always yields the same sequence.
  Rng fresh = derive_stream(99, 0);
  Rng fresh2 = derive_stream(99, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fresh(), fresh2());
  (void)a3;
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(0);
  int counter = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.emplace_back([&counter] { ++counter; });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter, 10);
}

TEST(ThreadPool, ParallelPoolRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.emplace_back([&counter] { ++counter; });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) tasks.emplace_back([] {});
  EXPECT_THROW(pool.run_batch(std::move(tasks)), std::runtime_error);
  // The pool remains usable after an exception.
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> more;
  more.emplace_back([&counter] { ++counter; });
  pool.run_batch(std::move(more));
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) tasks.emplace_back([&counter] { ++counter; });
    pool.run_batch(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_chunks(pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  parallel_for_chunks(pool, 1, [&](std::size_t b, std::size_t e) {
    one += static_cast<int>(e - b);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(Table, AlignedTextRendering) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("| alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("x");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t("csv");
  t.header({"a", "b"});
  t.row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::pct_ci(0.5, 0.012, 1), "50.0% ±1.2");
}

TEST(Env, ParsesSizesAndFallsBack) {
  ::setenv("DNNFI_TEST_N", "123", 1);
  EXPECT_EQ(env_size("DNNFI_TEST_N", 7), 123U);
  ::setenv("DNNFI_TEST_N", "not-a-number", 1);
  EXPECT_EQ(env_size("DNNFI_TEST_N", 7), 7U);
  ::unsetenv("DNNFI_TEST_N");
  EXPECT_EQ(env_size("DNNFI_TEST_N", 7), 7U);
}

TEST(Env, StringUnsetIsEmpty) {
  ::unsetenv("DNNFI_TEST_S");
  EXPECT_FALSE(env_string("DNNFI_TEST_S").has_value());
  ::setenv("DNNFI_TEST_S", "hello", 1);
  EXPECT_EQ(env_string("DNNFI_TEST_S").value(), "hello");
  ::unsetenv("DNNFI_TEST_S");
}

}  // namespace
}  // namespace dnnfi
