// Reduced-precision buffer storage (Proteus-style extension): upsets strike
// the stored format, the datapath computes in a wider type.
#include <gtest/gtest.h>

#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"

namespace dnnfi {
namespace {

using fault::Campaign;
using fault::CampaignOptions;
using fault::SiteClass;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

TEST(StorageFlip, EncodeUpsetDecode) {
  // A value stored as FLOAT16 struck on its top exponent bit decodes to the
  // same corrupted value a native FLOAT16 flip would give.
  const double v = 0.75;
  const double via_storage = numeric::flip_bit_in_storage(v, DType::kFloat16, 14);
  const double native = static_cast<double>(
      numeric::flip_bit(numeric::Half(0.75F), 14));
  EXPECT_EQ(via_storage, native);
}

TEST(StorageFlip, NarrowStorageBoundsTheDamage) {
  // In 16b_rb10 storage the worst representable magnitude is 32; a float
  // stored there and struck anywhere comes back bounded.
  for (int bit = 0; bit < 16; ++bit) {
    const double corrupted =
        numeric::flip_bit_in_storage(1.5, DType::kFx16r10, bit);
    EXPECT_LE(std::abs(corrupted), 32.0);
  }
  // Whereas a native float strike on the top exponent bit is astronomical:
  // 1.0f's exponent becomes 0xFF, i.e. +infinity.
  const double native = static_cast<double>(numeric::flip_bit(1.0F, 30));
  EXPECT_TRUE(std::isinf(native));
}

TEST(StorageFlip, QuantizesBeforeStriking) {
  // The encode step quantizes: sub-LSB detail disappears before the upset,
  // so striking the same bit twice projects onto the storage grid.
  const double v = 1.0 + 1.0 / 4096.0;  // a quarter rb10-LSB above 1.0
  const double twice = numeric::flip_bit_in_storage(
      numeric::flip_bit_in_storage(v, DType::kFx16r10, 0), DType::kFx16r10, 0);
  EXPECT_NE(twice, v);              // the sub-LSB detail is gone
  EXPECT_DOUBLE_EQ(twice, 1.0);     // rounded to the grid, flips cancelled
}

dnn::NetworkSpec tiny_spec() {
  return dnn::SpecBuilder("tiny", chw(1, 6, 6), 3)
      .conv(2, 3, 1, 1).relu().maxpool(2, 2)
      .fc(3).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob() {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, 5);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs() {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < 2; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(1, 6, 6));
    Rng rng(s + 1);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal());
    v.push_back(std::move(ex));
  }
  return v;
}

TEST(StorageCampaign, SamplerRestrictsBitsToStorageWidth) {
  fault::Sampler s(tiny_spec(), DType::kFloat);
  Rng rng(7);
  fault::SampleConstraint c;
  c.buffer_storage = DType::kFloat16;
  for (int i = 0; i < 500; ++i) {
    const auto f = s.sample(SiteClass::kGlobalBuffer, rng, c);
    ASSERT_LT(f.bit, 16);
    ASSERT_TRUE(f.storage.has_value());
    EXPECT_EQ(*f.storage, DType::kFloat16);
  }
}

TEST(StorageCampaign, DatapathSitesIgnoreStorage) {
  fault::Sampler s(tiny_spec(), DType::kFloat);
  Rng rng(8);
  fault::SampleConstraint c;
  c.buffer_storage = DType::kFloat16;
  bool saw_high_bit = false;
  for (int i = 0; i < 500; ++i) {
    const auto f = s.sample(SiteClass::kDatapathLatch, rng, c);
    EXPECT_FALSE(f.storage.has_value());
    saw_high_bit |= (f.bit >= 16);
  }
  EXPECT_TRUE(saw_high_bit);  // full 32-bit range still sampled
}

TEST(StorageCampaign, ReducedStorageRunsAndBoundsDeviation) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs());
  CampaignOptions opt;
  opt.trials = 200;
  opt.site = SiteClass::kGlobalBuffer;
  opt.constraint.buffer_storage = DType::kFx16r10;
  const auto r = c.run(opt);
  for (const auto& t : r.trials) {
    ASSERT_TRUE(t.record.applied);
    // Decoded corrupted values can never leave the storage format's range.
    EXPECT_LE(std::abs(t.record.corrupted_after), 32.0) << t.fault.describe();
  }
}

TEST(StorageCampaign, NativeFloatStorageCanExplode) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs());
  CampaignOptions opt;
  opt.trials = 400;
  opt.site = SiteClass::kGlobalBuffer;
  opt.constraint.fixed_bit = 30;
  const auto r = c.run(opt);
  bool saw_huge = false;
  for (const auto& t : r.trials)
    saw_huge |= std::abs(t.record.corrupted_after) > 1e30;
  EXPECT_TRUE(saw_huge);
}

TEST(StorageCampaign, AppliesToFilterSramAndImgReg) {
  Campaign c(tiny_spec(), tiny_blob(), DType::kFloat, tiny_inputs());
  for (const auto site : {SiteClass::kFilterSram, SiteClass::kImgReg}) {
    CampaignOptions opt;
    opt.trials = 100;
    opt.site = site;
    opt.constraint.buffer_storage = DType::kFloat16;
    const auto r = c.run(opt);
    for (const auto& t : r.trials) {
      ASSERT_TRUE(t.record.applied);
      EXPECT_LT(t.fault.bit, 16);
      EXPECT_LE(std::abs(t.record.corrupted_after), 65504.0);
    }
  }
}

}  // namespace
}  // namespace dnnfi
