// Layer-level correctness: forward semantics vs. independent references, and
// bit-exact fault-hook behaviour (the heart of the injection methodology).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/layers.h"

namespace dnnfi::dnn {
namespace {

using numeric::Fx16r10;
using numeric::Half;
using tensor::chw;
using tensor::Tensor;
using tensor::vec;

/// Independent double-precision conv reference (no shared code with Conv2d).
Tensor<double> conv_reference(const Tensor<double>& in,
                              const Tensor<double>& w,
                              const std::vector<double>& bias,
                              std::size_t stride, std::size_t pad) {
  const auto& is = in.shape();
  const auto& ws = w.shape();
  const std::size_t oh = (is.h + 2 * pad - ws.h) / stride + 1;
  const std::size_t ow = (is.w + 2 * pad - ws.w) / stride + 1;
  Tensor<double> out(chw(ws.n, oh, ow));
  for (std::size_t co = 0; co < ws.n; ++co)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = bias[co];
        for (std::size_t ci = 0; ci < ws.c; ++ci)
          for (std::size_t ky = 0; ky < ws.h; ++ky)
            for (std::size_t kx = 0; kx < ws.w; ++kx) {
              const auto iy = static_cast<std::ptrdiff_t>(oy * stride + ky) -
                              static_cast<std::ptrdiff_t>(pad);
              const auto ix = static_cast<std::ptrdiff_t>(ox * stride + kx) -
                              static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(is.h) || ix < 0 ||
                  ix >= static_cast<std::ptrdiff_t>(is.w))
                continue;
              acc += w.at(co, ci, ky, kx) *
                     in.at(0, ci, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix));
            }
        out.at(0, co, oy, ox) = acc;
      }
  return out;
}

/// Builds a conv layer with deterministic pseudo-random parameters.
template <typename T>
std::unique_ptr<Conv2d<T>> random_conv(std::size_t in_c, std::size_t out_c,
                                       std::size_t k, std::size_t stride,
                                       std::size_t pad, std::uint64_t seed) {
  auto conv = std::make_unique<Conv2d<T>>("conv", 1, in_c, out_c, k, stride, pad);
  Rng rng(seed);
  for (auto& w : conv->weights())
    w = numeric::numeric_traits<T>::from_double(rng.normal() * 0.3);
  for (auto& b : conv->biases())
    b = numeric::numeric_traits<T>::from_double(rng.normal() * 0.1);
  return conv;
}

template <typename T>
Tensor<T> random_input(tensor::Shape s, std::uint64_t seed, double scale = 1.0) {
  Tensor<T> t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = numeric::numeric_traits<T>::from_double(rng.normal() * scale);
  return t;
}

TEST(Conv2d, MatchesReferenceAcrossGeometries) {
  struct Geometry {
    std::size_t in_c, out_c, k, stride, pad, h, w;
  };
  const Geometry geos[] = {
      {1, 1, 1, 1, 0, 4, 4},  {1, 2, 3, 1, 0, 6, 6},  {3, 4, 3, 1, 1, 5, 7},
      {2, 3, 5, 2, 2, 9, 9},  {4, 2, 3, 2, 0, 8, 8},  {3, 5, 5, 1, 2, 6, 6},
  };
  int idx = 0;
  for (const auto& g : geos) {
    auto conv = random_conv<double>(g.in_c, g.out_c, g.k, g.stride, g.pad,
                                    100 + static_cast<std::uint64_t>(idx));
    const auto in = random_input<double>(chw(g.in_c, g.h, g.w),
                                         200 + static_cast<std::uint64_t>(idx));
    Tensor<double> out;
    conv->forward(in, out);

    Tensor<double> w(tensor::oihw(g.out_c, g.in_c, g.k, g.k));
    std::copy(conv->weights().begin(), conv->weights().end(), w.data().begin());
    std::vector<double> b(conv->biases().begin(), conv->biases().end());
    const auto ref = conv_reference(in, w, b, g.stride, g.pad);

    ASSERT_EQ(out.shape(), ref.shape()) << "geometry " << idx;
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_NEAR(out[i], ref[i], 1e-9) << "geometry " << idx << " elem " << i;
    ++idx;
  }
}

TEST(Conv2d, MacCountMatchesDefinition) {
  Conv2d<float> direct("c", 1, 3, 8, 5, 1, 2);
  const auto in_shape = chw(3, 16, 16);
  EXPECT_EQ(direct.macs(in_shape), 8U * 16U * 16U * (3U * 5U * 5U));
  EXPECT_EQ(direct.steps(), 75U);
}

TEST(Conv2d, OutShapeHonorsStrideAndPad) {
  Conv2d<float> direct("c", 1, 3, 4, 5, 2, 2);
  const auto os = direct.out_shape(chw(3, 48, 48));
  EXPECT_EQ(os, chw(4, 24, 24));
  EXPECT_THROW(direct.out_shape(chw(2, 48, 48)), dnnfi::ContractViolation);
}

TEST(Conv2d, MacFaultAccumulatorFlipChangesExactlyOneOutput) {
  auto conv = random_conv<float>(2, 3, 3, 1, 1, 7);
  const auto in = random_input<float>(chw(2, 6, 6), 8);
  Tensor<float> golden;
  conv->forward(in, golden);

  LayerFaults faults;
  MacFault mf;
  mf.out_index = 17;
  mf.step = 5;
  mf.site = MacSite::kAccumulator;
  mf.op = fault::FaultOp::flip(30);  // float high exponent bit
  faults.mac = mf;

  Tensor<float> faulty = golden;
  InjectionRecord rec;
  conv->apply_faults(in, faulty, faults, &rec);

  EXPECT_TRUE(rec.applied);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    if (golden[i] != faulty[i]) ++diffs;
  EXPECT_EQ(diffs, 1U);
  EXPECT_NE(faulty[17], golden[17]);
  EXPECT_EQ(rec.act_before, static_cast<double>(golden[17]));
  EXPECT_EQ(rec.act_after, static_cast<double>(faulty[17]));
}

TEST(Conv2d, MacFaultLastStepAccumulatorFlipIsExactBitFlipOfPreBias) {
  // Flipping the accumulator after the LAST step corrupts the completed
  // dot product before the bias add — verify bit-exactness end to end.
  auto conv = random_conv<float>(1, 1, 3, 1, 0, 9);
  // Zero bias isolates the accumulator value.
  for (auto& b : conv->biases()) b = 0.0F;
  const auto in = random_input<float>(chw(1, 3, 3), 10);
  Tensor<float> golden;
  conv->forward(in, golden);

  LayerFaults faults;
  MacFault mf;
  mf.out_index = 0;
  mf.step = conv->steps() - 1;
  mf.site = MacSite::kAccumulator;
  mf.op = fault::FaultOp::flip(12);
  faults.mac = mf;
  Tensor<float> faulty = golden;
  conv->apply_faults(in, faulty, faults, nullptr);
  EXPECT_EQ(numeric::numeric_traits<float>::to_bits(faulty[0]),
            numeric::numeric_traits<float>::to_bits(
                numeric::flip_bit(golden[0], 12)));
}

TEST(Conv2d, OperandFaultOnPaddedTapFlipsZero) {
  // Step 0 of output (0,0,0) with pad=1 reads a padded zero; flipping its
  // sign bit yields -0 and the output must stay bit-identical except via
  // the multiply (0 * w = -0 or 0). The fault is applied, not skipped.
  auto conv = random_conv<float>(1, 1, 3, 1, 1, 11);
  const auto in = random_input<float>(chw(1, 4, 4), 12);
  Tensor<float> golden;
  conv->forward(in, golden);
  LayerFaults faults;
  MacFault mf;
  mf.out_index = 0;
  mf.step = 0;  // (ci=0, ky=0, kx=0) is in the padding for output (0,0)
  mf.site = MacSite::kOperandAct;
  mf.op = fault::FaultOp::flip(31);
  faults.mac = mf;
  InjectionRecord rec;
  Tensor<float> faulty = golden;
  conv->apply_faults(in, faulty, faults, &rec);
  EXPECT_TRUE(rec.applied);
  EXPECT_EQ(rec.corrupted_before, 0.0);
  EXPECT_EQ(faulty[0], golden[0]);  // -0 * w == -(0 * w), sums equal
}

TEST(Conv2d, WeightFaultAffectsOnlyItsOutputChannel) {
  auto conv = random_conv<float>(2, 3, 3, 1, 1, 13);
  const auto in = random_input<float>(chw(2, 5, 5), 14);
  Tensor<float> golden;
  conv->forward(in, golden);

  LayerFaults faults;
  WeightFault wf;
  wf.weight_index = conv->steps() * 1 + 4;  // a weight of channel co=1
  wf.op = fault::FaultOp::flip(28);
  faults.weight = wf;
  Tensor<float> faulty = golden;
  conv->apply_faults(in, faulty, faults, nullptr);

  const auto os = golden.shape();
  for (std::size_t co = 0; co < os.c; ++co) {
    bool changed = false;
    for (std::size_t y = 0; y < os.h; ++y)
      for (std::size_t x = 0; x < os.w; ++x)
        changed |= (golden.at(0, co, y, x) != faulty.at(0, co, y, x));
    if (co == 1) {
      EXPECT_TRUE(changed) << "corrupted channel must change";
    } else {
      EXPECT_FALSE(changed) << "channel " << co << " must be untouched";
    }
  }
}

TEST(Conv2d, WeightFaultEqualsForwardWithFlippedWeight) {
  auto conv = random_conv<float>(2, 2, 3, 1, 0, 15);
  const auto in = random_input<float>(chw(2, 5, 5), 16);
  Tensor<float> golden;
  conv->forward(in, golden);

  const std::size_t wi = 7;
  const int bit = 20;
  LayerFaults faults;
  faults.weight = WeightFault{wi, fault::FaultOp::flip(bit)};
  Tensor<float> faulty = golden;
  conv->apply_faults(in, faulty, faults, nullptr);

  // Reference: flip the weight in place and run a clean forward.
  conv->weights()[wi] = numeric::flip_bit(conv->weights()[wi], bit);
  Tensor<float> ref;
  conv->forward(in, ref);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(numeric::numeric_traits<float>::to_bits(faulty[i]),
              numeric::numeric_traits<float>::to_bits(ref[i]));
}

TEST(Conv2d, ScopedInputFaultAffectsOnlyOneRow) {
  auto conv = random_conv<float>(1, 2, 3, 1, 1, 17);
  const auto in = random_input<float>(chw(1, 6, 6), 18);
  Tensor<float> golden;
  conv->forward(in, golden);

  LayerFaults faults;
  ScopedInputFault sf;
  sf.input_index = in.shape().index(0, 0, 2, 3);
  sf.out_channel = 1;
  sf.out_row = 2;
  sf.op = fault::FaultOp::flip(27);
  faults.scoped_input = sf;
  Tensor<float> faulty = golden;
  conv->apply_faults(in, faulty, faults, nullptr);

  const auto os = golden.shape();
  for (std::size_t co = 0; co < os.c; ++co)
    for (std::size_t y = 0; y < os.h; ++y)
      for (std::size_t x = 0; x < os.w; ++x) {
        const bool changed =
            golden.at(0, co, y, x) != faulty.at(0, co, y, x);
        if (!(co == 1 && y == 2)) EXPECT_FALSE(changed);
      }
  // And the scoped row does change (input (2,3) is in row 2's receptive field).
  bool row_changed = false;
  for (std::size_t x = 0; x < os.w; ++x)
    row_changed |= (golden.at(0, 1, 2, x) != faulty.at(0, 1, 2, x));
  EXPECT_TRUE(row_changed);
}

TEST(Conv2d, FixedPointMacSaturatesInsteadOfWrapping) {
  Conv2d<Fx16r10> direct("c", 1, 1, 1, 1, 1, 0);
  direct.weights()[0] = Fx16r10(30.0);
  direct.biases()[0] = Fx16r10(0.0);
  Tensor<Fx16r10> in(chw(1, 1, 1));
  in[0] = Fx16r10(30.0);
  Tensor<Fx16r10> out;
  direct.forward(in, out);
  EXPECT_EQ(out[0].raw(), Fx16r10::kRawMax);  // 900 saturates at ~32
}

TEST(FullyConnected, MatchesManualDotProduct) {
  FullyConnected<double> fc("fc", 1, 3, 2);
  auto w = fc.weights();
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 0.5 * static_cast<double>(i);
  fc.biases()[0] = 1.0;
  fc.biases()[1] = -1.0;
  Tensor<double> in(vec(3));
  in[0] = 1.0;
  in[1] = 2.0;
  in[2] = 3.0;
  Tensor<double> out;
  fc.forward(in, out);
  // out0 = 0*1 + 0.5*2 + 1*3 + 1 = 5; out1 = 1.5*1 + 2*2 + 2.5*3 - 1 = 12.
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(FullyConnected, MacFaultOperandWeight) {
  FullyConnected<float> fc("fc", 1, 4, 3);
  Rng rng(19);
  for (auto& w : fc.weights()) w = static_cast<float>(rng.normal());
  const auto in = random_input<float>(vec(4), 20);
  Tensor<float> golden;
  fc.forward(in, golden);
  LayerFaults faults;
  MacFault mf;
  mf.out_index = 2;
  mf.step = 1;
  mf.site = MacSite::kOperandWeight;
  mf.op = fault::FaultOp::flip(25);
  faults.mac = mf;
  Tensor<float> faulty = golden;
  InjectionRecord rec;
  fc.apply_faults(in, faulty, faults, &rec);
  EXPECT_EQ(faulty[0], golden[0]);
  EXPECT_EQ(faulty[1], golden[1]);
  EXPECT_NE(faulty[2], golden[2]);
  EXPECT_EQ(rec.corrupted_before, static_cast<double>(fc.weights()[2 * 4 + 1]));
}

TEST(FullyConnected, WeightFaultAffectsSingleOutput) {
  FullyConnected<float> fc("fc", 1, 5, 4);
  Rng rng(21);
  for (auto& w : fc.weights()) w = static_cast<float>(rng.normal());
  const auto in = random_input<float>(vec(5), 22);
  Tensor<float> golden;
  fc.forward(in, golden);
  LayerFaults faults;
  faults.weight =
      WeightFault{3 * 5 + 2, fault::FaultOp::flip(22)};  // weight of output 3
  Tensor<float> faulty = golden;
  fc.apply_faults(in, faulty, faults, nullptr);
  for (std::size_t o = 0; o < 4; ++o) {
    if (o == 3) EXPECT_NE(faulty[o], golden[o]);
    else EXPECT_EQ(faulty[o], golden[o]);
  }
}

TEST(Relu, ClampsNegatives) {
  Relu<float> relu("relu", 1);
  Tensor<float> in(vec(4));
  in[0] = -1.0F;
  in[1] = 0.0F;
  in[2] = 2.5F;
  in[3] = -0.0F;
  Tensor<float> out;
  relu.forward(in, out);
  EXPECT_EQ(out[0], 0.0F);
  EXPECT_EQ(out[1], 0.0F);
  EXPECT_EQ(out[2], 2.5F);
  EXPECT_EQ(out[3], 0.0F);
}

TEST(Relu, MasksNegativeCorruption) {
  // A corrupted hugely-negative value is fully masked by ReLU — one of the
  // paper's masking mechanisms.
  Relu<Half> relu("relu", 1);
  Tensor<Half> in(vec(1));
  in[0] = Half(-60000.0F);
  Tensor<Half> out;
  relu.forward(in, out);
  EXPECT_EQ(static_cast<float>(out[0]), 0.0F);
}

TEST(MaxPool, SelectsWindowMaxima) {
  MaxPool2d<float> pool("pool", 1, 2, 2);
  Tensor<float> in(chw(1, 4, 4));
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  Tensor<float> out;
  pool.forward(in, out);
  ASSERT_EQ(out.shape(), chw(1, 2, 2));
  EXPECT_EQ(out.at(0, 0, 0, 0), 5.0F);
  EXPECT_EQ(out.at(0, 0, 0, 1), 7.0F);
  EXPECT_EQ(out.at(0, 0, 1, 0), 13.0F);
  EXPECT_EQ(out.at(0, 0, 1, 1), 15.0F);
}

TEST(MaxPool, MasksNonMaximalCorruption) {
  MaxPool2d<float> pool("pool", 1, 2, 2);
  Tensor<float> in(chw(1, 2, 2));
  in[0] = 1.0F;
  in[1] = 9.0F;
  in[2] = 2.0F;
  in[3] = 3.0F;
  Tensor<float> clean;
  pool.forward(in, clean);
  in[0] = -5000.0F;  // corrupt a discarded element
  Tensor<float> faulty;
  pool.forward(in, faulty);
  EXPECT_EQ(clean[0], faulty[0]);
}

TEST(Lrn, MatchesClosedFormSingleChannelWindow) {
  // size=1 window: out = v / (k + alpha * v^2)^beta.
  Lrn<double> lrn("lrn", 1, 1, 0.5, 0.75, 2.0);
  Tensor<double> in(chw(1, 1, 1));
  in[0] = 3.0;
  Tensor<double> out;
  lrn.forward(in, out);
  EXPECT_NEAR(out[0], 3.0 / std::pow(2.0 + 0.5 * 9.0, 0.75), 1e-12);
}

TEST(Lrn, CrossChannelNormalization) {
  // size=3 over 3 channels: middle channel sees all three.
  Lrn<double> lrn("lrn", 1, 3, 3.0, 0.5, 1.0);  // alpha/n = 1
  Tensor<double> in(chw(3, 1, 1));
  in[0] = 1.0;
  in[1] = 2.0;
  in[2] = 2.0;
  Tensor<double> out;
  lrn.forward(in, out);
  // denom(c=1) = sqrt(1 + (1+4+4)) = sqrt(10).
  EXPECT_NEAR(out[1], 2.0 / std::sqrt(10.0), 1e-12);
  // denom(c=0) = sqrt(1 + (1+4)) = sqrt(6) (window clipped at the edge).
  EXPECT_NEAR(out[0], 1.0 / std::sqrt(6.0), 1e-12);
}

TEST(Lrn, DampensOutlierRelativeToNeighbors) {
  // LRN must shrink a huge corrupted value far more than proportionally —
  // the masking effect of Fig 7.
  Lrn<float> lrn("lrn", 1, 5, 1e-2, 0.75, 1.0);
  Tensor<float> in(chw(5, 1, 1));
  for (std::size_t c = 0; c < 5; ++c) in.at(0, c, 0, 0) = 1.0F;
  Tensor<float> clean;
  lrn.forward(in, clean);
  in.at(0, 2, 0, 0) = 10000.0F;
  Tensor<float> faulty;
  lrn.forward(in, faulty);
  const double amplification = faulty.at(0, 2, 0, 0) / clean.at(0, 2, 0, 0);
  EXPECT_LT(amplification, 2000.0);  // strongly sub-proportional to 10^4
}

TEST(Softmax, NormalizesAndOrders) {
  Softmax<float> sm("softmax", 1);
  Tensor<float> in(vec(3));
  in[0] = 1.0F;
  in[1] = 2.0F;
  in[2] = 3.0F;
  Tensor<float> out;
  sm.forward(in, out);
  double sum = 0;
  for (std::size_t i = 0; i < 3; ++i) sum += out[i];
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(out[2], out[1]);
  EXPECT_GT(out[1], out[0]);
}

TEST(Softmax, StableUnderHugeCorruptedInput) {
  Softmax<Half> sm("softmax", 1);
  Tensor<Half> in(vec(2));
  in[0] = Half(60000.0F);
  in[1] = Half(1.0F);
  Tensor<Half> out;
  sm.forward(in, out);
  EXPECT_NEAR(static_cast<float>(out[0]), 1.0F, 1e-3F);
}

TEST(Softmax, NanInputDoesNotPoisonOthers) {
  Softmax<float> sm("softmax", 1);
  Tensor<float> in(vec(2));
  in[0] = std::nanf("");
  in[1] = 1.0F;
  Tensor<float> out;
  sm.forward(in, out);
  EXPECT_NEAR(out[1], 1.0F, 1e-6F);
}

TEST(GlobalAvgPool, AveragesPerChannel) {
  GlobalAvgPool<float> gap("gap", 1);
  Tensor<float> in(chw(2, 2, 2));
  for (std::size_t i = 0; i < 4; ++i) in[i] = 2.0F;
  for (std::size_t i = 4; i < 8; ++i) in[i] = static_cast<float>(i);
  Tensor<float> out;
  gap.forward(in, out);
  ASSERT_EQ(out.shape(), vec(2));
  EXPECT_FLOAT_EQ(out[0], 2.0F);
  EXPECT_FLOAT_EQ(out[1], (4.0F + 5.0F + 6.0F + 7.0F) / 4.0F);
}

}  // namespace
}  // namespace dnnfi::dnn
