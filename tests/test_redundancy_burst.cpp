// DMR/TMR baseline models and multi-bit burst upsets.
#include <gtest/gtest.h>

#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/mitigate/redundancy.h"

namespace dnnfi {
namespace {

using numeric::DType;
using tensor::chw;
using tensor::Tensor;

TEST(Redundancy, StandardSchemes) {
  const auto& s = mitigate::redundancy_schemes();
  ASSERT_EQ(s.size(), 3U);
  EXPECT_EQ(s[0].name, "Unprotected");
  EXPECT_EQ(s[1].name, "DMR");
  EXPECT_GT(s[1].area_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(s[1].detection, 1.0);
  EXPECT_DOUBLE_EQ(s[1].correction, 0.0);
  EXPECT_EQ(s[2].name, "TMR");
  EXPECT_GT(s[2].area_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(s[2].correction, 1.0);
}

TEST(Redundancy, ResidualSdc) {
  const auto& s = mitigate::redundancy_schemes();
  EXPECT_DOUBLE_EQ(mitigate::residual_sdc(s[0], 0.1), 0.1);   // unprotected
  EXPECT_DOUBLE_EQ(mitigate::residual_sdc(s[1], 0.1), 0.0);   // DMR detects all
  EXPECT_DOUBLE_EQ(mitigate::residual_sdc(s[2], 0.1), 0.0);   // TMR corrects all
  EXPECT_THROW(mitigate::residual_sdc(s[0], 1.5), ContractViolation);
}

TEST(Burst, FlipBurstXorsAdjacentBits) {
  const float v = 1.0F;
  const auto bits = numeric::numeric_traits<float>::to_bits(v);
  const auto b2 = numeric::numeric_traits<float>::to_bits(
      numeric::flip_burst(v, 4, 3));
  EXPECT_EQ(b2, bits ^ 0b111'0000U);
}

TEST(Burst, LengthOneEqualsFlipBit) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.normal();
    const int bit = static_cast<int>(rng.below(64));
    EXPECT_EQ(numeric::flip_burst(v, bit, 1), numeric::flip_bit(v, bit));
  }
}

TEST(Burst, TruncatesAtWordBoundary) {
  const numeric::Half h(2.5F);
  // Burst of 8 starting at bit 14 only touches bits 14-15.
  const auto flipped = numeric::flip_burst(h, 14, 8);
  EXPECT_EQ(flipped.bits(), h.bits() ^ 0xC000U);
}

TEST(Burst, InvalidArgumentsThrow) {
  EXPECT_THROW(numeric::flip_burst(1.0F, -1, 2), ContractViolation);
  EXPECT_THROW(numeric::flip_burst(1.0F, 32, 2), ContractViolation);
  EXPECT_THROW(numeric::flip_burst(1.0F, 0, 0), ContractViolation);
}

dnn::NetworkSpec tiny_spec() {
  return dnn::SpecBuilder("tiny", chw(1, 6, 6), 3)
      .conv(2, 3, 1, 1).relu().maxpool(2, 2)
      .fc(3).softmax()
      .build();
}

TEST(BurstCampaign, BurstLengthIsHonoredEndToEnd) {
  dnn::Network<float> seed_net(tiny_spec());
  dnn::init_weights(seed_net, 5);
  const auto blob = dnn::extract_weights(seed_net);
  std::vector<dnn::Example> inputs(1);
  inputs[0].image = Tensor<float>(chw(1, 6, 6));
  Rng rng(1);
  for (std::size_t i = 0; i < inputs[0].image.size(); ++i)
    inputs[0].image[i] = static_cast<float>(rng.normal());

  fault::Campaign c(tiny_spec(), blob, DType::kFloat, std::move(inputs));
  fault::CampaignOptions opt;
  opt.trials = 100;
  opt.site = fault::SiteClass::kGlobalBuffer;
  opt.constraint.burst = 4;
  const auto r = c.run(opt);
  for (const auto& t : r.trials) {
    ASSERT_EQ(t.fault.burst, 4);
    ASSERT_TRUE(t.record.applied);
    // A 4-bit burst generally changes the value by more than one bit's
    // worth: verify the corrupted word differs from both the original and
    // any single-bit flip of it at the same position.
    EXPECT_NE(t.record.corrupted_after, t.record.corrupted_before);
  }
}

TEST(BurstCampaign, WiderBurstsNeverReduceCorruptionReach) {
  dnn::Network<float> seed_net(tiny_spec());
  dnn::init_weights(seed_net, 6);
  const auto blob = dnn::extract_weights(seed_net);
  std::vector<dnn::Example> inputs(2);
  for (std::size_t s = 0; s < 2; ++s) {
    inputs[s].image = Tensor<float>(chw(1, 6, 6));
    Rng rng(s + 10);
    for (std::size_t i = 0; i < inputs[s].image.size(); ++i)
      inputs[s].image[i] = static_cast<float>(rng.normal());
  }
  fault::Campaign c(tiny_spec(), blob, DType::kFloat, std::move(inputs));

  auto reach = [&](int burst) {
    fault::CampaignOptions opt;
    opt.trials = 300;
    opt.constraint.burst = burst;
    return c.run(opt)
        .rate([](const fault::TrialRecord& t) { return t.output_corruption > 0; })
        .p;
  };
  // Wider bursts touch a superset of bit positions per strike; their reach
  // should be at least comparable (allow sampling slack).
  EXPECT_GE(reach(8) + 0.1, reach(1));
}

}  // namespace
}  // namespace dnnfi
