// Cross-module property tests: algebraic invariants of the numeric types,
// monotonicity of quantization, fault-descriptor self-description, and
// statistical invariants of the sampler — parameterized sweeps in the
// TEST_P style.
#include <gtest/gtest.h>

#include <cmath>

#include "dnnfi/common/rng.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/mitigate/slh.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi {
namespace {

using numeric::DType;
using numeric::Half;

// ---------------------------------------------------------------------------
// Half algebraic properties over a pseudo-random sample of finite values.

class HalfAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Half random_half(Rng& rng) const {
    // Uniform over finite bit patterns.
    for (;;) {
      const auto bits = static_cast<std::uint16_t>(rng.below(0x10000));
      const Half h = Half::from_bits(bits);
      if (!h.is_nan() && !h.is_inf()) return h;
    }
  }
};

TEST_P(HalfAlgebra, AdditionCommutes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ((a + b).bits(), (b + a).bits());
  }
}

TEST_P(HalfAlgebra, MultiplicationCommutes) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ((a * b).bits(), (b * a).bits());
  }
}

TEST_P(HalfAlgebra, ZeroAndOneAreIdentities) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng);
    EXPECT_EQ(static_cast<float>(a + Half(0.0F)), static_cast<float>(a));
    EXPECT_EQ((a * Half(1.0F)).bits(), a.bits());
  }
}

TEST_P(HalfAlgebra, NegationIsSignBitFlip) {
  Rng rng(GetParam() ^ 0x77);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng);
    EXPECT_EQ((-a).bits(), a.bits() ^ 0x8000U);
  }
}

TEST_P(HalfAlgebra, OrderingMatchesFloatOrdering) {
  Rng rng(GetParam() ^ 0xFEFE);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ(a < b, static_cast<float>(a) < static_cast<float>(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfAlgebra,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Fixed-point properties, swept over the three paper formats.

template <typename F>
class FixedAlgebra : public ::testing::Test {};
using FixedFormats =
    ::testing::Types<numeric::Fx16r10, numeric::Fx32r10, numeric::Fx32r26>;
TYPED_TEST_SUITE(FixedAlgebra, FixedFormats);

TYPED_TEST(FixedAlgebra, QuantizationIsMonotone) {
  using F = TypeParam;
  Rng rng(99);
  const double range = static_cast<double>(F::max_value()) * 1.5;
  for (int i = 0; i < 500; ++i) {
    const double a = (rng.uniform() - 0.5) * 2 * range;
    const double b = (rng.uniform() - 0.5) * 2 * range;
    if (a <= b) {
      EXPECT_LE(F(a).raw(), F(b).raw()) << "a=" << a << " b=" << b;
    } else {
      EXPECT_GE(F(a).raw(), F(b).raw());
    }
  }
}

TYPED_TEST(FixedAlgebra, AdditionCommutesAndNeverWraps) {
  using F = TypeParam;
  Rng rng(101);
  const double range = static_cast<double>(F::max_value());
  for (int i = 0; i < 500; ++i) {
    const F a((rng.uniform() - 0.5) * 2 * range);
    const F b((rng.uniform() - 0.5) * 2 * range);
    EXPECT_EQ((a + b).raw(), (b + a).raw());
    // Saturation: result magnitude is bounded, never sign-flipped garbage.
    if (a.raw() > 0 && b.raw() > 0) EXPECT_GE((a + b).raw(), a.raw());
    if (a.raw() < 0 && b.raw() < 0) EXPECT_LE((a + b).raw(), a.raw());
  }
}

TYPED_TEST(FixedAlgebra, MultiplicationWithinUlpOfRealProduct) {
  using F = TypeParam;
  Rng rng(103);
  const double lsb = 1.0 / F::kScale;
  for (int i = 0; i < 500; ++i) {
    const double a = (rng.uniform() - 0.5) * 4.0;
    const double b = (rng.uniform() - 0.5) * 4.0;
    const double got = static_cast<double>(F(a) * F(b));
    // Inputs quantize to within lsb/2 each; |a|,|b| <= 2 bounds the error.
    EXPECT_NEAR(got, a * b, 2.5 * lsb + 1e-12);
  }
}

TYPED_TEST(FixedAlgebra, FlipBitRoundTripsThroughBits) {
  using F = TypeParam;
  Rng rng(107);
  for (int i = 0; i < 200; ++i) {
    const F v((rng.uniform() - 0.5) * 10.0);
    const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(F::kWidth)));
    EXPECT_EQ(numeric::flip_bit(numeric::flip_bit(v, bit), bit).raw(), v.raw());
  }
}

// ---------------------------------------------------------------------------
// Conversion-chain property across all six types: double -> T -> double is a
// projection (converting twice equals converting once).

class DTypeProjection : public ::testing::TestWithParam<DType> {};

TEST_P(DTypeProjection, RoundTripIsIdempotent) {
  const DType dt = GetParam();
  numeric::dispatch_dtype(dt, [&]<typename T>() {
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
      const double v = rng.normal() * 20.0;
      const double once =
          numeric::numeric_traits<T>::to_double(numeric::numeric_traits<T>::from_double(v));
      const double twice = numeric::numeric_traits<T>::to_double(
          numeric::numeric_traits<T>::from_double(once));
      EXPECT_EQ(once, twice) << numeric::dtype_name(dt) << " v=" << v;
    }
  });
}

TEST_P(DTypeProjection, FlipBitAlwaysChangesStoredBits) {
  const DType dt = GetParam();
  numeric::dispatch_dtype(dt, [&]<typename T>() {
    Rng rng(13);
    using Tr = numeric::numeric_traits<T>;
    for (int i = 0; i < 300; ++i) {
      const T v = Tr::from_double(rng.normal());
      const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(Tr::width)));
      EXPECT_NE(Tr::to_bits(numeric::flip_bit(v, bit)), Tr::to_bits(v));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DTypeProjection,
                         ::testing::ValuesIn(numeric::kAllDTypes),
                         [](const auto& info) {
                           return std::string(numeric::dtype_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Descriptor description strings.

TEST(Descriptor, DescribeNamesSiteAndScope) {
  fault::FaultDescriptor f;
  f.cls = fault::SiteClass::kImgReg;
  f.block = 3;
  f.element = 17;
  f.out_channel = 2;
  f.out_row = 5;
  f.bit = 9;
  const std::string d = f.describe();
  EXPECT_NE(d.find("img-reg"), std::string::npos);
  EXPECT_NE(d.find("block 3"), std::string::npos);
  EXPECT_NE(d.find("co=2"), std::string::npos);
  EXPECT_NE(d.find("bit 9"), std::string::npos);

  f.cls = fault::SiteClass::kDatapathLatch;
  f.latch = accel::DatapathLatch::kProduct;
  EXPECT_NE(f.describe().find("datapath/product"), std::string::npos);
}

TEST(Descriptor, BufferOfMapsAllBufferClasses) {
  EXPECT_EQ(fault::buffer_of(fault::SiteClass::kGlobalBuffer),
            accel::BufferKind::kGlobalBuffer);
  EXPECT_EQ(fault::buffer_of(fault::SiteClass::kImgReg),
            accel::BufferKind::kImgReg);
  EXPECT_THROW(fault::buffer_of(fault::SiteClass::kDatapathLatch),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Beta fit recovers the generating parameter on exact model curves.

TEST(SlhBeta, RecoversKnownBeta) {
  for (const double beta : {0.5, 2.0, 7.0, 20.0}) {
    std::vector<mitigate::CoveragePoint> curve;
    for (int k = 0; k <= 50; ++k) {
      const double x = k / 50.0;
      curve.push_back(
          {x, (1.0 - std::exp(-beta * x)) / (1.0 - std::exp(-beta))});
    }
    EXPECT_NEAR(mitigate::fit_beta(curve), beta, beta * 0.05 + 0.05);
  }
}

}  // namespace
}  // namespace dnnfi
