// Cross-module property tests: algebraic invariants of the numeric types,
// monotonicity of quantization, fault-descriptor self-description, and
// statistical invariants of the sampler — parameterized sweeps in the
// TEST_P style.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dnnfi/common/exact_sum.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/common/serial.h"
#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/dnn/spec.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/dnn/zoo.h"
#include "dnnfi/fault/accumulator.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/fault_op.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/sampler.h"
#include "dnnfi/mitigate/slh.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi {
namespace {

using numeric::DType;
using numeric::Half;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Half algebraic properties over a pseudo-random sample of finite values.

class HalfAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Half random_half(Rng& rng) const {
    // Uniform over finite bit patterns.
    for (;;) {
      const auto bits = static_cast<std::uint16_t>(rng.below(0x10000));
      const Half h = Half::from_bits(bits);
      if (!h.is_nan() && !h.is_inf()) return h;
    }
  }
};

TEST_P(HalfAlgebra, AdditionCommutes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ((a + b).bits(), (b + a).bits());
  }
}

TEST_P(HalfAlgebra, MultiplicationCommutes) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ((a * b).bits(), (b * a).bits());
  }
}

TEST_P(HalfAlgebra, ZeroAndOneAreIdentities) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng);
    EXPECT_EQ(static_cast<float>(a + Half(0.0F)), static_cast<float>(a));
    EXPECT_EQ((a * Half(1.0F)).bits(), a.bits());
  }
}

TEST_P(HalfAlgebra, NegationIsSignBitFlip) {
  Rng rng(GetParam() ^ 0x77);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng);
    EXPECT_EQ((-a).bits(), a.bits() ^ 0x8000U);
  }
}

TEST_P(HalfAlgebra, OrderingMatchesFloatOrdering) {
  Rng rng(GetParam() ^ 0xFEFE);
  for (int i = 0; i < 200; ++i) {
    const Half a = random_half(rng), b = random_half(rng);
    EXPECT_EQ(a < b, static_cast<float>(a) < static_cast<float>(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfAlgebra,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Fixed-point properties, swept over the three paper formats.

template <typename F>
class FixedAlgebra : public ::testing::Test {};
using FixedFormats =
    ::testing::Types<numeric::Fx16r10, numeric::Fx32r10, numeric::Fx32r26>;
TYPED_TEST_SUITE(FixedAlgebra, FixedFormats);

TYPED_TEST(FixedAlgebra, QuantizationIsMonotone) {
  using F = TypeParam;
  Rng rng(99);
  const double range = static_cast<double>(F::max_value()) * 1.5;
  for (int i = 0; i < 500; ++i) {
    const double a = (rng.uniform() - 0.5) * 2 * range;
    const double b = (rng.uniform() - 0.5) * 2 * range;
    if (a <= b) {
      EXPECT_LE(F(a).raw(), F(b).raw()) << "a=" << a << " b=" << b;
    } else {
      EXPECT_GE(F(a).raw(), F(b).raw());
    }
  }
}

TYPED_TEST(FixedAlgebra, AdditionCommutesAndNeverWraps) {
  using F = TypeParam;
  Rng rng(101);
  const double range = static_cast<double>(F::max_value());
  for (int i = 0; i < 500; ++i) {
    const F a((rng.uniform() - 0.5) * 2 * range);
    const F b((rng.uniform() - 0.5) * 2 * range);
    EXPECT_EQ((a + b).raw(), (b + a).raw());
    // Saturation: result magnitude is bounded, never sign-flipped garbage.
    if (a.raw() > 0 && b.raw() > 0) EXPECT_GE((a + b).raw(), a.raw());
    if (a.raw() < 0 && b.raw() < 0) EXPECT_LE((a + b).raw(), a.raw());
  }
}

TYPED_TEST(FixedAlgebra, MultiplicationWithinUlpOfRealProduct) {
  using F = TypeParam;
  Rng rng(103);
  const double lsb = 1.0 / F::kScale;
  for (int i = 0; i < 500; ++i) {
    const double a = (rng.uniform() - 0.5) * 4.0;
    const double b = (rng.uniform() - 0.5) * 4.0;
    const double got = static_cast<double>(F(a) * F(b));
    // Inputs quantize to within lsb/2 each; |a|,|b| <= 2 bounds the error.
    EXPECT_NEAR(got, a * b, 2.5 * lsb + 1e-12);
  }
}

TYPED_TEST(FixedAlgebra, FlipBitRoundTripsThroughBits) {
  using F = TypeParam;
  Rng rng(107);
  for (int i = 0; i < 200; ++i) {
    const F v((rng.uniform() - 0.5) * 10.0);
    const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(F::kWidth)));
    EXPECT_EQ(numeric::flip_bit(numeric::flip_bit(v, bit), bit).raw(), v.raw());
  }
}

// ---------------------------------------------------------------------------
// Conversion-chain property across all six types: double -> T -> double is a
// projection (converting twice equals converting once).

class DTypeProjection : public ::testing::TestWithParam<DType> {};

TEST_P(DTypeProjection, RoundTripIsIdempotent) {
  const DType dt = GetParam();
  numeric::dispatch_dtype(dt, [&]<typename T>() {
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
      const double v = rng.normal() * 20.0;
      const double once =
          numeric::numeric_traits<T>::to_double(numeric::numeric_traits<T>::from_double(v));
      const double twice = numeric::numeric_traits<T>::to_double(
          numeric::numeric_traits<T>::from_double(once));
      EXPECT_EQ(once, twice) << numeric::dtype_name(dt) << " v=" << v;
    }
  });
}

TEST_P(DTypeProjection, FlipBitAlwaysChangesStoredBits) {
  const DType dt = GetParam();
  numeric::dispatch_dtype(dt, [&]<typename T>() {
    Rng rng(13);
    using Tr = numeric::numeric_traits<T>;
    for (int i = 0; i < 300; ++i) {
      const T v = Tr::from_double(rng.normal());
      const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(Tr::width)));
      EXPECT_NE(Tr::to_bits(numeric::flip_bit(v, bit)), Tr::to_bits(v));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DTypeProjection,
                         ::testing::ValuesIn(numeric::kAllDTypes),
                         [](const auto& info) {
                           return std::string(numeric::dtype_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Descriptor description strings.

TEST(Descriptor, DescribeNamesSiteAndScope) {
  fault::FaultDescriptor f;
  f.cls = fault::SiteClass::kImgReg;
  f.block = 3;
  f.element = 17;
  f.out_channel = 2;
  f.out_row = 5;
  f.bit = 9;
  const std::string d = f.describe();
  EXPECT_NE(d.find("img-reg"), std::string::npos);
  EXPECT_NE(d.find("block 3"), std::string::npos);
  EXPECT_NE(d.find("co=2"), std::string::npos);
  EXPECT_NE(d.find("bit 9"), std::string::npos);

  f.cls = fault::SiteClass::kDatapathLatch;
  f.latch = accel::DatapathLatch::kProduct;
  EXPECT_NE(f.describe().find("datapath/product"), std::string::npos);
}

TEST(Descriptor, BufferOfMapsAllBufferClasses) {
  EXPECT_EQ(fault::buffer_of(fault::SiteClass::kGlobalBuffer),
            accel::BufferKind::kGlobalBuffer);
  EXPECT_EQ(fault::buffer_of(fault::SiteClass::kImgReg),
            accel::BufferKind::kImgReg);
  EXPECT_THROW(fault::buffer_of(fault::SiteClass::kDatapathLatch),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// FaultOp algebra (DESIGN.md §11): the mask model bits' = ((bits & ~set0) |
// set1) ^ toggle makes toggle an involution, set0/set1 idempotent, and the
// all-zero op the identity — and a pure toggle burst must be bit-for-bit the
// legacy numeric::flip_burst the paper's campaigns were built on.

/// Applies `op` to a raw 64-bit word via the double bit-cast traits (pure
/// bit operations end to end, so arbitrary patterns survive untouched).
std::uint64_t apply64(std::uint64_t v, const fault::FaultOp& op) {
  using Tr = numeric::numeric_traits<double>;
  return Tr::to_bits(fault::apply_op(Tr::from_bits(v), op));
}

fault::FaultOp random_op(Rng& rng) {
  fault::FaultOp op;
  // Populate one, two, or three masks; keep them within 64 bits.
  const auto mask = [&rng] { return rng() & rng(); };  // sparse-ish
  switch (rng.below(4)) {
    case 0: op.toggle = mask(); break;
    case 1: op.set0 = mask(); break;
    case 2: op.set1 = mask(); break;
    default: op.set0 = mask(); op.set1 = mask(); op.toggle = mask(); break;
  }
  return op;
}

TEST(FaultOpAlgebra, ToggleIsAnInvolutionOnEveryDType) {
  for (const DType dt : numeric::kAllDTypes) {
    numeric::dispatch_dtype(dt, [&]<typename T>() {
      Rng rng(0xF0 ^ static_cast<std::uint64_t>(dt));
      for (int i = 0; i < 300; ++i) {
        const T v = numeric::numeric_traits<T>::from_double(rng.normal() * 8);
        fault::FaultOp op;
        op.toggle = rng();
        const T twice = fault::apply_op(fault::apply_op(v, op), op);
        EXPECT_EQ(numeric::numeric_traits<T>::to_bits(twice),
                  numeric::numeric_traits<T>::to_bits(v))
            << numeric::dtype_name(dt);
      }
    });
  }
}

TEST(FaultOpAlgebra, EveryOpIsIdempotentUpToItsToggleParity) {
  // set0/set1 alone are idempotent; a general op applied twice differs from
  // once only by the second toggle, so stripping toggle makes any op
  // idempotent. Checked on raw uint64 words (the mask algebra itself).
  Rng rng(0x1D3);
  for (int i = 0; i < 500; ++i) {
    fault::FaultOp op = random_op(rng);
    op.toggle = 0;
    const std::uint64_t v = rng();
    const std::uint64_t once = apply64(v, op);
    EXPECT_EQ(apply64(once, op), once);
  }
}

TEST(FaultOpAlgebra, DefaultOpIsTheIdentity) {
  const fault::FaultOp id;
  EXPECT_TRUE(id.is_identity());
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng();
    EXPECT_EQ(apply64(v, id), v);
    const Half h = Half::from_bits(static_cast<std::uint16_t>(rng.below(0x10000)));
    EXPECT_EQ(fault::apply_op(h, id).bits(), h.bits());
  }
}

TEST(FaultOpAlgebra, FlipBurstOpMatchesLegacyFlipBurst) {
  for (const DType dt : numeric::kAllDTypes) {
    numeric::dispatch_dtype(dt, [&]<typename T>() {
      using Tr = numeric::numeric_traits<T>;
      Rng rng(0xB57 ^ static_cast<std::uint64_t>(dt));
      for (int i = 0; i < 300; ++i) {
        const T v = Tr::from_double(rng.normal() * 4);
        const int bit = static_cast<int>(rng.below(Tr::width));
        const int len = 1 + static_cast<int>(rng.below(4));
        EXPECT_EQ(Tr::to_bits(fault::apply_op(v, fault::FaultOp::flip(bit, len))),
                  Tr::to_bits(numeric::flip_burst(v, bit, len)))
            << numeric::dtype_name(dt) << " bit=" << bit << " len=" << len;
      }
    });
  }
}

TEST(FaultOpAlgebra, SetOpsForceAffectedBitsRegardlessOfInput) {
  Rng rng(0x5E7);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t m = rng() | 1;
    const std::uint64_t v = rng();
    EXPECT_EQ(apply64(v, fault::FaultOp{m, 0, 0}) & m, 0U);
    EXPECT_EQ(apply64(v, fault::FaultOp{0, m, 0}) & m, m);
  }
}

TEST(FaultOpSpecRoundTrip, CanonicalStringsParseBack) {
  for (const char* s :
       {"toggle", "toggle:3", "set0", "set1", "set1:4", "set0:0x0005"}) {
    const auto spec = fault::FaultOpSpec::parse(s);
    ASSERT_TRUE(spec.has_value()) << s;
    EXPECT_EQ(spec->to_string(), s);
  }
  for (const char* s : {"", "mixed", "toggle:", "toggle:0", "set1:0x0",
                        "set0:abc", "flip"}) {
    EXPECT_FALSE(fault::FaultOpSpec::parse(s).has_value()) << s;
  }
  // Materializing at a bit shifts the relative footprint to that anchor.
  const auto burst = fault::FaultOpSpec::parse("toggle:3");
  EXPECT_EQ(burst->at(5), fault::FaultOp::flip(5, 3));
  const auto pat = fault::FaultOpSpec::parse("set1:0x5");
  EXPECT_EQ(pat->at(2), fault::FaultOp::pattern(fault::FaultOpKind::kSet1,
                                                0x5ULL << 2));
}

// Op application must be bit-identical whichever kernel set executes the
// faulty layer: the injection hooks corrupt logical tensor words, never the
// SIMD-packed copies, so scalar and avx2 runs see the same upset.
TEST(FaultOpKernels, FaultyRunsBitIdenticalAcrossScalarAndAvx2) {
  if (dnn::kernels::kernel_set<float>("avx2") == nullptr)
    GTEST_SKIP() << "avx2 kernels not available on this build/CPU";
  struct ModeGuard {
    ~ModeGuard() { dnn::kernels::set_active_mode("auto"); }
  } guard;

  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  dnn::WeightsBlob blob;
  {
    dnn::Network<float> seed(spec);
    dnn::init_weights(seed, 77);
    blob = dnn::extract_weights(seed);
  }
  Tensor<Half> img(spec.input);
  {
    Rng rng(123);
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] = numeric::numeric_traits<Half>::from_double(rng.normal() * 0.5);
  }

  // Faults sampled on the systolic geometry with non-toggle ops exercise
  // every lowering path (column propagation included) under both kernel
  // sets with identical descriptors.
  const auto model = accel::make_accelerator(
      *accel::parse_accelerator("systolic:8x8"));
  const fault::Sampler sampler(spec, DType::kFloat16, *model);
  std::vector<fault::FaultDescriptor> faults;
  {
    Rng rng(2017);
    fault::SampleConstraint sc;
    int i = 0;
    for (const auto cls : model->site_classes()) {
      for (const auto kind :
           {fault::FaultOpKind::kToggle, fault::FaultOpKind::kSet0,
            fault::FaultOpKind::kSet1}) {
        sc.op_kind = kind;
        sc.burst = 1 + (i++ % 3);
        faults.push_back(sampler.sample(cls, rng, sc));
      }
    }
  }

  auto run_mode = [&](const char* mode) {
    EXPECT_TRUE(dnn::kernels::set_active_mode(mode));
    dnn::Network<Half> net(spec);  // plan captures the active kernel set
    dnn::load_weights(net, blob);
    const auto golden = net.forward_trace(img);
    std::vector<Tensor<Half>> outs;
    for (const auto& f : faults)
      outs.push_back(net.forward_with_fault(
          golden, fault::lower(f, net.mac_layers(), *model)));
    return outs;
  };
  const auto scalar = run_mode("scalar");
  const auto avx2 = run_mode("avx2");
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_TRUE(tensor::bitwise_equal(avx2[i], scalar[i]))
        << faults[i].describe();
}

// ---------------------------------------------------------------------------
// Rng contract: `below(bound)` stays strictly inside the bound and is
// (roughly) uniform, and `derive_stream` is injective in the stream index.
// These two are the foundation of the sharded-campaign determinism contract
// (DESIGN.md §7): trial t's entire randomness is derive_stream(seed, t).

class RngBelow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelow, NeverReachesBound) {
  Rng rng(GetParam());
  for (const std::uint64_t bound :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{64}, std::uint64_t{1000},
        std::uint64_t{1} << 33, std::uint64_t{0} - 2}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST_P(RngBelow, RoughlyUniformOver64Buckets) {
  Rng rng(GetParam() ^ 0xB0C4);
  constexpr int kBuckets = 64;
  constexpr int kDraws = 64 * 1000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.below(kBuckets)];
  // Pearson chi-square with 63 dof: mean 63, stddev ~11.2. 150 is ~7.8
  // sigma above the mean — a deterministic seed either passes or the
  // generator is genuinely broken.
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (const int h : hist) {
    const double d = h - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 150.0) << "chi2=" << chi2;
  // And no bucket is starved or flooded outright.
  for (std::size_t b = 0; b < hist.size(); ++b) {
    EXPECT_GT(hist[b], expected * 0.8) << "bucket " << b;
    EXPECT_LT(hist[b], expected * 1.2) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBelow, ::testing::Values(0, 1, 2017, 31013));

TEST(DeriveStream, IdenticalInputsYieldIdenticalStreams) {
  for (const std::uint64_t seed : {0ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    for (const std::uint64_t i : {0ULL, 1ULL, 1000000ULL}) {
      Rng a = derive_stream(seed, i);
      Rng b = derive_stream(seed, i);
      for (int k = 0; k < 64; ++k) ASSERT_EQ(a(), b());
    }
  }
}

TEST(DeriveStream, DistinctIndicesYieldDistinctStreams) {
  // Any two of the first 256 trial streams must diverge within the first
  // few draws; a campaign where two trials shared randomness would silently
  // double-count one fault site.
  constexpr std::uint64_t kSeed = 2017;
  constexpr int kStreams = 256;
  std::set<std::array<std::uint64_t, 4>> prefixes;
  for (int i = 0; i < kStreams; ++i) {
    Rng r = derive_stream(kSeed, static_cast<std::uint64_t>(i));
    prefixes.insert({r(), r(), r(), r()});
  }
  EXPECT_EQ(prefixes.size(), static_cast<std::size_t>(kStreams));
}

TEST(DeriveStream, DifferentSeedsYieldDistinctStreams) {
  Rng a = derive_stream(1, 0);
  Rng b = derive_stream(2, 0);
  bool differs = false;
  for (int k = 0; k < 4; ++k) differs |= (a() != b());
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Sampler coverage: over 10k draws, every layer a SiteClass can legally
// strike (pick_layer weight > 0) is hit at least once, and no illegal layer
// is ever hit. Legality mirrors the sampler's weighting rule: datapath
// latches weight by MACs; buffer classes by MACs x occupied words.

TEST(SamplerCoverage, EveryLegalLayerHitWithinTenThousandDraws) {
  const auto spec = dnn::SpecBuilder("cov", tensor::chw(2, 8, 8), 4)
                        .conv(3, 3, 1, 1).relu()
                        .conv(4, 3, 1, 1).relu().maxpool(2, 2)
                        .fc(4).softmax()
                        .build();
  const fault::Sampler sampler(spec, numeric::DType::kFloat16);
  const auto& fp = sampler.footprints();
  for (const auto cls : fault::kAllSiteClasses) {
    std::set<std::size_t> legal;
    for (std::size_t l = 0; l < fp.size(); ++l) {
      double w = static_cast<double>(fp[l].macs);
      if (cls != fault::SiteClass::kDatapathLatch)
        w *= static_cast<double>(accel::occupied_elems(fp[l], fault::buffer_of(cls)));
      if (w > 0) legal.insert(l);
    }
    ASSERT_FALSE(legal.empty()) << fault::site_class_name(cls);

    Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(cls));
    std::set<std::size_t> hit;
    for (int i = 0; i < 10000; ++i)
      hit.insert(sampler.sample(cls, rng).mac_ordinal);
    EXPECT_EQ(hit, legal) << fault::site_class_name(cls);
  }
}

// ---------------------------------------------------------------------------
// ExactSum: the partition-independence property the sharded merge relies on.
// Any grouping and ordering of the same multiset of doubles must yield
// bit-identical value() and serialized bytes.

namespace {
std::vector<std::uint8_t> exact_sum_bytes(const ExactSum& s) {
  ByteWriter w;
  s.serialize(w);
  return w.take();
}
}  // namespace

TEST(ExactSumProperty, PartitionAndOrderIndependent) {
  Rng rng(0xE5);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    // Wild dynamic range: magnitudes from 2^-300 to 2^+300, both signs.
    xs.push_back(std::ldexp(rng.normal(), static_cast<int>(rng.between(-300, 300))));
  }
  ExactSum forward;
  for (const double x : xs) forward.add(x);

  ExactSum reverse;
  for (std::size_t i = xs.size(); i-- > 0;) reverse.add(xs[i]);

  // Random 8-way partition merged in shuffled order.
  std::array<ExactSum, 8> parts;
  for (const double x : xs) parts[rng.below(parts.size())].add(x);
  std::array<std::size_t, 8> order{0, 1, 2, 3, 4, 5, 6, 7};
  for (std::size_t i = order.size(); i-- > 1;)
    std::swap(order[i], order[rng.below(i + 1)]);
  ExactSum merged;
  for (const std::size_t i : order) merged.merge(parts[i]);

  const auto want = exact_sum_bytes(forward);
  EXPECT_EQ(exact_sum_bytes(reverse), want);
  EXPECT_EQ(exact_sum_bytes(merged), want);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reverse.value()),
            std::bit_cast<std::uint64_t>(forward.value()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(merged.value()),
            std::bit_cast<std::uint64_t>(forward.value()));
}

TEST(ExactSumProperty, ExactWhenMagnitudesAreRepresentable) {
  // Each sign's magnitude accumulates exactly; value() subtracts the two
  // rounded magnitudes, so it is exact whenever both are representable.
  ExactSum s;
  s.add(3.5);
  s.add(-1.25);
  s.add(0x1.0p-40);
  s.add(-0x1.0p-40);
  EXPECT_EQ(s.value(), 2.25);
}

TEST(ExactSumProperty, ZeroMeansNothingAdded) {
  ExactSum s;
  EXPECT_TRUE(s.zero());
  EXPECT_EQ(s.value(), 0.0);
  s.add(0.0);  // zeros do not perturb the state
  EXPECT_TRUE(s.zero());
  s.add(1.0);
  EXPECT_FALSE(s.zero());
}

// ---------------------------------------------------------------------------
// Accumulator merge identity: a zero-trial stratum is a no-op operand.

TEST(OutcomeAccumulatorProperty, MergingZeroTrialStratumIsIdentity) {
  fault::TrialRecord t;
  t.outcome.sdc1 = true;
  t.output_corruption = 0.25;
  t.block_distance = {0.5, 3.0};
  fault::OutcomeAccumulator acc(2);
  acc.add(t);
  t.outcome.sdc1 = false;
  t.block_distance = {0.0, 1.0};
  acc.add(t);

  const auto before = acc.bytes();
  const fault::Estimate ci_before = acc.sdc1();

  // A pre-sized per-stratum accumulator that saw zero trials — exactly what
  // the stratified campaign holds for a converged-at-pilot or empty stratum.
  // Its block-slot count is deliberately *larger* than the target's; merging
  // it must not grow the target's block vector or otherwise perturb its
  // serialized state (ExactSums included) or its CI widths.
  const fault::OutcomeAccumulator empty(8);
  acc.merge(empty);

  EXPECT_EQ(acc.bytes(), before);
  EXPECT_EQ(acc.sdc1().ci95, ci_before.ci95);
  EXPECT_EQ(acc.trials(), 2U);
  EXPECT_EQ(acc.num_blocks(), 2U);

  // Merging real state *into* a zero-trial accumulator still works and
  // reproduces the source bytes (pre-sizing on the target side is the
  // intended per-stratum construction pattern, not a perturbation).
  fault::OutcomeAccumulator sink;
  sink.merge(acc);
  EXPECT_EQ(sink.bytes(), acc.bytes());
}

// ---------------------------------------------------------------------------
// Beta fit recovers the generating parameter on exact model curves.

TEST(SlhBeta, RecoversKnownBeta) {
  for (const double beta : {0.5, 2.0, 7.0, 20.0}) {
    std::vector<mitigate::CoveragePoint> curve;
    for (int k = 0; k <= 50; ++k) {
      const double x = k / 50.0;
      curve.push_back(
          {x, (1.0 - std::exp(-beta * x)) / (1.0 - std::exp(-beta))});
    }
    EXPECT_NEAR(mitigate::fit_beta(curve), beta, beta * 0.05 + 0.05);
  }
}

}  // namespace
}  // namespace dnnfi
