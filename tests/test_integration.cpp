// End-to-end integration: a small trained network goes through the full
// pipeline — training, quantized deployment, fault campaigns in several data
// types, SED protection, FIT accounting — and the paper's qualitative laws
// must hold.
#include <gtest/gtest.h>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/train.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fit/fit.h"
#include "dnnfi/mitigate/sed.h"

namespace dnnfi {
namespace {

using dnn::Example;
using dnn::NetworkSpec;
using fault::Campaign;
using fault::CampaignOptions;
using fault::SiteClass;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

/// 4-class toy dataset: quadrant of the bright blob determines the class.
Example quadrant_example(std::uint64_t i) {
  Rng rng = derive_stream(808, i);
  Example ex;
  ex.label = i % 4;
  ex.image = Tensor<float>(chw(1, 8, 8));
  const std::size_t qy = (ex.label / 2) * 4;
  const std::size_t qx = (ex.label % 2) * 4;
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) {
      const bool hot = y >= qy && y < qy + 4 && x >= qx && x < qx + 4;
      ex.image.at(0, 0, y, x) =
          static_cast<float>((hot ? 1.0 : -0.5) + rng.normal() * 0.15);
    }
  return ex;
}

/// Trains the shared toy model once for the whole test suite.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new NetworkSpec(dnn::SpecBuilder("it", chw(1, 8, 8), 4)
                                .conv(4, 3, 1, 1).relu().maxpool(2, 2)
                                .conv(8, 3, 1, 1).relu().maxpool(2, 2)
                                .fc(4).softmax()
                                .build());
    dnn::Network<float> net(*spec_);
    dnn::init_weights(net, 21);
    dnn::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.train_count = 400;
    cfg.batch = 16;
    cfg.learning_rate = 0.05;
    cfg.seed = 22;
    dnn::train(net, quadrant_example, cfg);
    blob_ = new dnn::WeightsBlob(dnn::extract_weights(net));
    // The model must genuinely classify or SDC analysis is meaningless.
    const auto eval = dnn::evaluate(net, quadrant_example, 5000, 100);
    ASSERT_GE(eval.accuracy, 0.95);
  }
  static void TearDownTestSuite() {
    delete spec_;
    delete blob_;
    spec_ = nullptr;
    blob_ = nullptr;
  }

  static std::vector<Example> inputs(std::size_t n) {
    std::vector<Example> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(quadrant_example(9000 + i));
    return v;
  }

  static NetworkSpec* spec_;
  static dnn::WeightsBlob* blob_;
};
NetworkSpec* IntegrationTest::spec_ = nullptr;
dnn::WeightsBlob* IntegrationTest::blob_ = nullptr;

TEST_F(IntegrationTest, QuantizedDeploymentsAgreeOnCleanInputs) {
  // float, half, and both 32-bit fixed formats must classify the same way
  // on clean inputs (the 16b_rb10 range ±32 also suffices for this net).
  std::vector<std::size_t> top1s;
  for (const DType t : numeric::kAllDTypes) {
    Campaign c(*spec_, *blob_, t, inputs(4));
    top1s.push_back(c.golden_prediction(0).top1());
  }
  for (std::size_t i = 1; i < top1s.size(); ++i) EXPECT_EQ(top1s[i], top1s[0]);
}

TEST_F(IntegrationTest, WideRangeTypesAreMoreVulnerable) {
  // Paper law: SDC probability grows with redundant dynamic range.
  // 32b_rb10 (range ±2M) must beat 32b_rb26 (range ±32) decisively.
  CampaignOptions opt;
  opt.trials = 400;
  Campaign wide(*spec_, *blob_, DType::kFx32r10, inputs(4));
  Campaign narrow(*spec_, *blob_, DType::kFx32r26, inputs(4));
  const auto sdc_wide = wide.run(opt).sdc1();
  const auto sdc_narrow = narrow.run(opt).sdc1();
  EXPECT_GT(sdc_wide.p, sdc_narrow.p);
}

TEST_F(IntegrationTest, OnlyHighOrderBitsCauseSdcInFloat) {
  Campaign c(*spec_, *blob_, DType::kFloat, inputs(4));
  CampaignOptions lo;
  lo.trials = 150;
  lo.constraint.fixed_bit = 5;  // deep mantissa
  EXPECT_EQ(c.run(lo).sdc1().hits, 0U);

  CampaignOptions hi;
  hi.trials = 150;
  hi.constraint.fixed_bit = 30;  // top exponent bit
  EXPECT_GT(c.run(hi).sdc1().hits, 0U);
}

TEST_F(IntegrationTest, LargeValueDeviationsCorrelateWithSdc) {
  Campaign c(*spec_, *blob_, DType::kFloat16, inputs(4));
  CampaignOptions opt;
  opt.trials = 600;
  const auto r = c.run(opt);
  double dev_sdc = 0, dev_benign = 0;
  std::size_t n_sdc = 0, n_benign = 0;
  for (const auto& t : r.trials) {
    const double dev = std::abs(t.record.act_after - t.record.act_before);
    const double capped = std::isfinite(dev) ? std::min(dev, 1e6) : 1e6;
    if (t.outcome.sdc1) {
      dev_sdc += capped;
      ++n_sdc;
    } else {
      dev_benign += capped;
      ++n_benign;
    }
  }
  ASSERT_GT(n_sdc, 0U);
  ASSERT_GT(n_benign, 0U);
  EXPECT_GT(dev_sdc / static_cast<double>(n_sdc),
            dev_benign / static_cast<double>(n_benign));
}

TEST_F(IntegrationTest, BufferFaultsSpreadMoreThanDatapathFaults) {
  // Filter-SRAM faults (whole-channel reuse) must corrupt at least as much
  // of the final activation as single-use datapath faults, and Img-REG
  // (one-row) faults sit in between datapath and filter-SRAM.
  CampaignOptions opt;
  opt.trials = 400;
  Campaign c(*spec_, *blob_, DType::kFx16r10, inputs(4));

  opt.site = SiteClass::kDatapathLatch;
  const double corr_dp = c.run(opt)
                             .rate([](const fault::TrialRecord& t) {
                               return t.output_corruption > 0;
                             })
                             .p;
  opt.site = SiteClass::kFilterSram;
  const double corr_fs = c.run(opt)
                             .rate([](const fault::TrialRecord& t) {
                               return t.output_corruption > 0;
                             })
                             .p;
  EXPECT_GE(corr_fs, corr_dp * 0.8);  // reuse makes reach >= single-use
}

TEST_F(IntegrationTest, SedDetectsMostSdcsWithHighPrecision) {
  const auto detector = mitigate::learn_sed(*spec_, *blob_, DType::kFloat,
                                            quadrant_example, 0, 50);
  Campaign c(*spec_, *blob_, DType::kFloat, inputs(4));
  CampaignOptions opt;
  opt.trials = 800;
  opt.detector = detector.as_predicate();
  const auto ev = mitigate::evaluate_sed(c.run(opt));
  EXPECT_GT(ev.precision.p, 0.9);
  EXPECT_GT(ev.recall.p, 0.6);
}

TEST_F(IntegrationTest, FitPipelineEndToEnd) {
  Campaign c(*spec_, *blob_, DType::kFx16r10, inputs(4));
  CampaignOptions opt;
  opt.trials = 300;
  const double sdc = c.run(opt).sdc1().p;
  const auto cfg = accel::eyeriss_16nm();
  const double dp_fit = fit::datapath_fit(DType::kFx16r10, cfg.num_pes, sdc);
  EXPECT_GE(dp_fit, 0.0);
  EXPECT_LT(dp_fit, 2.0);  // 86 kbit of latches cannot exceed ~1.7 FIT

  opt.site = SiteClass::kGlobalBuffer;
  const double gb_sdc = c.run(opt).sdc1().p;
  const auto fp = accel::analyze(*spec_);
  const double gb_fit =
      fit::buffer_fit(fp, accel::BufferKind::kGlobalBuffer, cfg, gb_sdc);
  EXPECT_GE(gb_fit, 0.0);
}

TEST_F(IntegrationTest, CampaignIsThreadCountInvariant) {
  // The same campaign must produce identical results no matter how the
  // work is chunked (we exercise the serial path vs the global pool).
  Campaign c(*spec_, *blob_, DType::kFloat16, inputs(2));
  CampaignOptions opt;
  opt.trials = 60;
  // Run twice on the global pool (configured by the environment); the
  // determinism contract says results depend only on the seed, never on
  // how the work was chunked across threads.
  const auto a = c.run(opt);
  const auto b = c.run(opt);
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome.sdc1, b.trials[i].outcome.sdc1);
    EXPECT_EQ(a.trials[i].record.corrupted_after,
              b.trials[i].record.corrupted_after);
  }
}

}  // namespace
}  // namespace dnnfi
