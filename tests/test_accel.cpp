// Accelerator model: datapath inventory, Eyeriss parameters (Table 7),
// technology projection, and dataflow footprint analysis.
#include <gtest/gtest.h>

#include "dnnfi/accel/dataflow.h"
#include "dnnfi/accel/datapath.h"
#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/dnn/zoo.h"

namespace dnnfi::accel {
namespace {

TEST(Datapath, InventoryScalesWithWordWidth) {
  EXPECT_EQ(datapath_inventory(numeric::DType::kFloat16).bits_per_pe(), 64U);
  EXPECT_EQ(datapath_inventory(numeric::DType::kFloat).bits_per_pe(), 128U);
  EXPECT_EQ(datapath_inventory(numeric::DType::kDouble).bits_per_pe(), 256U);
  EXPECT_EQ(datapath_inventory(numeric::DType::kFx16r10).bits_per_pe(), 64U);
}

TEST(Datapath, LatchNames) {
  EXPECT_STREQ(datapath_latch_name(DatapathLatch::kProduct), "product");
  EXPECT_EQ(kAllDatapathLatches.size(), 4U);
}

TEST(Eyeriss, Published65nmParameters) {
  const auto c = eyeriss_65nm();
  EXPECT_EQ(c.feature_nm, 65);
  EXPECT_EQ(c.num_pes, 168U);
  EXPECT_DOUBLE_EQ(c.global_buffer_kb, 98.0);
  EXPECT_EQ(c.word_bits, 16);
}

TEST(Eyeriss, Projected16nmParametersMatchTable7) {
  const auto c = eyeriss_16nm();
  EXPECT_EQ(c.feature_nm, 16);
  EXPECT_EQ(c.num_pes, 1344U);               // 168 x 8
  EXPECT_DOUBLE_EQ(c.global_buffer_kb, 784.0);  // 98 x 8
  EXPECT_DOUBLE_EQ(c.filter_sram_kb, 3.52);
  EXPECT_DOUBLE_EQ(c.img_reg_kb, 0.19);
  EXPECT_DOUBLE_EQ(c.psum_reg_kb, 0.38);
}

TEST(Eyeriss, ProjectionDoublesPerGeneration) {
  const auto base = eyeriss_65nm();
  const auto one = project(base, 1);
  EXPECT_EQ(one.num_pes, base.num_pes * 2);
  EXPECT_DOUBLE_EQ(one.global_buffer_kb, base.global_buffer_kb * 2);
  const auto zero = project(base, 0);
  EXPECT_EQ(zero.num_pes, base.num_pes);
}

TEST(Eyeriss, TotalBitsAccountsForPerPeInstances) {
  const auto c = eyeriss_16nm();
  EXPECT_EQ(c.total_bits(BufferKind::kGlobalBuffer),
            static_cast<std::size_t>(784.0 * 1024 * 8));
  EXPECT_EQ(c.total_bits(BufferKind::kFilterSram),
            static_cast<std::size_t>(3.52 * 1024 * 8) * 1344U);
  EXPECT_EQ(c.instance_bits(BufferKind::kImgReg),
            static_cast<std::size_t>(0.19 * 1024 * 8));
}

TEST(Dataflow, AnalyzesConvNetFootprints) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto fp = analyze(spec);
  ASSERT_EQ(fp.size(), 5U);  // 3 conv + 2 fc

  // conv1: 3x32x32 input, 16 channels out, 5x5 kernel, pad 2.
  EXPECT_TRUE(fp[0].is_conv);
  EXPECT_EQ(fp[0].block, 1);
  EXPECT_EQ(fp[0].input_elems, 3U * 32U * 32U);
  EXPECT_EQ(fp[0].steps, 75U);
  EXPECT_EQ(fp[0].weight_elems, 16U * 75U);
  EXPECT_EQ(fp[0].output_elems, 16U * 32U * 32U);
  EXPECT_EQ(fp[0].macs, fp[0].output_elems * 75U);

  // fc4: flattened 4x4x32 -> 64.
  EXPECT_FALSE(fp[3].is_conv);
  EXPECT_EQ(fp[3].input_elems, 512U);
  EXPECT_EQ(fp[3].weight_elems, 512U * 64U);
  EXPECT_EQ(fp[3].macs, 512U * 64U);
}

TEST(Dataflow, TotalMacsSumsLayers) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto fp = analyze(spec);
  std::size_t manual = 0;
  for (const auto& f : fp) manual += f.macs;
  EXPECT_EQ(total_macs(fp), manual);
}

TEST(Dataflow, NiNHasTwelveMacLayersAndDeepestIsSmall) {
  const auto fp = analyze(dnn::zoo::network_spec(dnn::zoo::NetworkId::kNiNS));
  EXPECT_EQ(fp.size(), 12U);
  EXPECT_GT(fp.front().input_elems, fp.back().input_elems);
}

TEST(Dataflow, OccupancyPerBuffer) {
  const auto fp = analyze(dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet));
  const auto& conv1 = fp[0];
  EXPECT_EQ(occupied_elems(conv1, BufferKind::kGlobalBuffer), conv1.input_elems);
  EXPECT_EQ(occupied_elems(conv1, BufferKind::kFilterSram), conv1.weight_elems);
  EXPECT_EQ(occupied_elems(conv1, BufferKind::kImgReg), conv1.input_elems);
  EXPECT_EQ(occupied_elems(conv1, BufferKind::kPsumReg), conv1.output_elems);
}

TEST(Dataflow, ReuseReachOrdering) {
  // Reuse reach must reflect the paper's hierarchy: global buffer and
  // filter SRAM spread widely; img REG one row; psum REG one element.
  const auto fp = analyze(dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet));
  const auto& conv2 = fp[1];
  EXPECT_GT(reuse_reach(conv2, BufferKind::kFilterSram),
            reuse_reach(conv2, BufferKind::kImgReg));
  EXPECT_GT(reuse_reach(conv2, BufferKind::kImgReg),
            reuse_reach(conv2, BufferKind::kPsumReg));
  EXPECT_EQ(reuse_reach(conv2, BufferKind::kPsumReg), 1U);
  // FC weights are used once per inference.
  const auto& fc = fp[3];
  EXPECT_EQ(reuse_reach(fc, BufferKind::kFilterSram), 1U);
}

}  // namespace
}  // namespace dnnfi::accel
