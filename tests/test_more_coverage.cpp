// Additional coverage: quantized non-MAC layers, spec-builder conventions,
// buffer-site sampler weighting, FIT occupancy arithmetic on a hand-checked
// case, CSV emission, and SED evaluation edge cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "dnnfi/common/table.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fit/fit.h"
#include "dnnfi/mitigate/sed.h"

namespace dnnfi {
namespace {

using numeric::Fx16r10;
using numeric::Half;
using tensor::chw;
using tensor::Tensor;
using tensor::vec;

TEST(QuantizedLayers, LrnOutputsAreRepresentable) {
  dnn::Lrn<Fx16r10> lrn("n", 1, 3, 0.5, 0.75, 1.0);
  Tensor<Fx16r10> in(chw(3, 2, 2));
  Rng rng(1);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = Fx16r10(rng.normal() * 3.0);
  Tensor<Fx16r10> out;
  lrn.forward(in, out);
  // LRN is contractive for |v| >= 0 with k = 1: |out| <= |in|.
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(out[i])),
              std::abs(static_cast<double>(in[i])) + 1.0 / 1024.0);
  }
}

TEST(QuantizedLayers, SoftmaxInHalfSumsToOne) {
  dnn::Softmax<Half> sm("s", 1);
  Tensor<Half> in(vec(8));
  Rng rng(2);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = Half(rng.normal() * 4.0);
  Tensor<Half> out;
  sm.forward(in, out);
  double sum = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    sum += static_cast<double>(out[i]);
  EXPECT_NEAR(sum, 1.0, 0.01);  // binary16 quantization slack
}

TEST(QuantizedLayers, MaxPoolPreservesRawBits) {
  // Pooling selects, never recomputes: outputs are bit-identical copies.
  dnn::MaxPool2d<Fx16r10> pool("p", 1, 2, 2);
  Tensor<Fx16r10> in(chw(1, 4, 4));
  Rng rng(3);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = Fx16r10(rng.normal() * 5.0);
  Tensor<Fx16r10> out;
  pool.forward(in, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < in.size(); ++j)
      found |= (in[j].raw() == out[i].raw());
    EXPECT_TRUE(found);
  }
}

TEST(SpecBuilder, NamesAndBlocksFollowConvention) {
  const auto spec = dnn::SpecBuilder("t", chw(1, 8, 8), 2)
                        .conv(2, 3, 1, 1).relu().lrn().maxpool(2, 2)
                        .fc(2).softmax()
                        .build();
  ASSERT_EQ(spec.layers.size(), 6U);
  EXPECT_EQ(spec.layers[0].name, "conv1");
  EXPECT_EQ(spec.layers[1].name, "relu1");
  EXPECT_EQ(spec.layers[2].name, "norm1");
  EXPECT_EQ(spec.layers[3].name, "pool1");
  EXPECT_EQ(spec.layers[4].name, "fc2");
  EXPECT_EQ(spec.layers[5].name, "softmax2");
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(spec.layers[i].block, 1);
  EXPECT_EQ(spec.layers[4].block, 2);
  EXPECT_EQ(spec.num_blocks(), 2);
  EXPECT_TRUE(spec.has_softmax());
}

TEST(SamplerWeighting, BufferSitesWeightByOccupancyTimesResidency) {
  const auto spec = dnn::SpecBuilder("w", chw(2, 8, 8), 4)
                        .conv(3, 3, 1, 1).relu()
                        .conv(4, 3, 1, 1).relu().maxpool(2, 2)
                        .fc(4).softmax()
                        .build();
  fault::Sampler s(spec, numeric::DType::kFloat16);
  Rng rng(4);
  std::map<std::size_t, int> hist;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    ++hist[s.sample(fault::SiteClass::kFilterSram, rng).mac_ordinal];
  const auto& fp = s.footprints();
  double total = 0;
  std::vector<double> w(fp.size());
  for (std::size_t l = 0; l < fp.size(); ++l) {
    w[l] = static_cast<double>(fp[l].weight_elems) *
           static_cast<double>(fp[l].macs);
    total += w[l];
  }
  for (std::size_t l = 0; l < fp.size(); ++l) {
    EXPECT_NEAR(hist[l] / static_cast<double>(n), w[l] / total, 0.02)
        << "layer " << l;
  }
}

TEST(FitOccupancy, HandCheckedTwoLayerCase) {
  // Two layers: occupancies 100 and 300 words, durations 1M and 3M MACs.
  // Time-averaged occupied bits = (100*1 + 300*3)/4 * 16 = 4000 bits.
  const auto spec = dnn::SpecBuilder("h", chw(1, 10, 10), 4)
                        .conv(2, 3, 1, 1).relu().maxpool(2, 2)
                        .fc(4).softmax()
                        .build();
  const auto fp = accel::analyze(spec);
  auto cfg = accel::eyeriss_16nm();
  const double occ =
      fit::occupied_bits(fp, accel::BufferKind::kGlobalBuffer, cfg);
  // Cross-check against the definition directly.
  double weighted = 0, time = 0;
  for (const auto& f : fp) {
    weighted += static_cast<double>(f.input_elems) * 16.0 *
                static_cast<double>(f.macs);
    time += static_cast<double>(f.macs);
  }
  EXPECT_NEAR(occ, weighted / time, 1e-9);
}

TEST(TableIo, WriteCsvCreatesDirectoryAndFile) {
  Table t("io");
  t.header({"a"});
  t.row({"1"});
  const auto dir =
      (std::filesystem::temp_directory_path() / "dnnfi_csv_test").string();
  std::filesystem::remove_all(dir);
  const std::string path = t.write_csv(dir, "x");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a");
  std::filesystem::remove_all(dir);
}

TEST(SedEvaluation, NoSdcTrialsGivesEmptyRecall) {
  fault::CampaignResult r;
  r.trials.resize(5);  // all benign, none detected
  const auto ev = mitigate::evaluate_sed(r);
  EXPECT_EQ(ev.recall.n, 0U);
  EXPECT_DOUBLE_EQ(ev.precision.p, 1.0);
  EXPECT_EQ(ev.sdc_count, 0U);
}

TEST(SedEvaluation, AllDetectedBenignKillsPrecision) {
  fault::CampaignResult r;
  r.trials.resize(4);
  for (auto& t : r.trials) t.detected = true;  // 4 false alarms
  const auto ev = mitigate::evaluate_sed(r);
  EXPECT_DOUBLE_EQ(ev.precision.p, 0.0);
}

TEST(Outcome, MismatchedScoreSizesThrow) {
  dnn::Prediction a, b;
  a.scores = {0.5, 0.5};
  b.scores = {1.0};
  EXPECT_THROW(fault::classify(a, b), ContractViolation);
}

TEST(CampaignInputs, EmptyInputSetRejected) {
  const auto spec = dnn::SpecBuilder("e", chw(1, 6, 6), 2)
                        .conv(2, 3, 1, 1).relu().global_avg_pool()
                        .build();
  dnn::Network<float> net(spec);
  dnn::init_weights(net, 1);
  EXPECT_THROW(fault::Campaign(spec, dnn::extract_weights(net),
                               numeric::DType::kFloat, {}),
               ContractViolation);
}

TEST(CampaignOptions, ZeroTrialsYieldEmptyResult) {
  const auto spec = dnn::SpecBuilder("z", chw(1, 6, 6), 2)
                        .conv(2, 3, 1, 1).relu().global_avg_pool()
                        .build();
  dnn::Network<float> net(spec);
  dnn::init_weights(net, 1);
  std::vector<dnn::Example> inputs(1);
  inputs[0].image = Tensor<float>(chw(1, 6, 6));
  fault::Campaign c(spec, dnn::extract_weights(net), numeric::DType::kFloat,
                    std::move(inputs));
  fault::CampaignOptions opt;
  opt.trials = 0;
  // Empty shards are a natural edge of sharded execution: legal, and every
  // estimate over them is an exact zero-width zero.
  const auto r = c.run(opt);
  EXPECT_TRUE(r.trials.empty());
  for (const auto& e : {r.sdc1(), r.sdc5(), r.sdc10(), r.sdc20(),
                        r.rate([](const fault::TrialRecord&) { return true; })}) {
    EXPECT_EQ(e.n, 0u);
    EXPECT_EQ(e.hits, 0u);
    EXPECT_EQ(e.p, 0.0);
    EXPECT_EQ(e.ci95, 0.0);
    EXPECT_EQ(e.lo, 0.0);
    EXPECT_EQ(e.hi, 0.0);
  }
  const auto sh = c.run_shard(opt, fault::ShardSpec{});
  EXPECT_TRUE(sh.complete);
  EXPECT_EQ(sh.acc.trials(), 0u);
  EXPECT_EQ(sh.acc.sdc1().ci95, 0.0);
}

}  // namespace
}  // namespace dnnfi
