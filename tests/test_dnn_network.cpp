// Network assembly, golden traces, fault-aware partial re-execution,
// predictions, the model zoo topologies, and serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/serialize.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/dnn/zoo.h"

namespace dnnfi::dnn {
namespace {

using numeric::Fx16r10;
using numeric::Half;
using tensor::chw;
using tensor::Tensor;

NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(1, 8, 8), 4)
      .conv(2, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

Tensor<float> random_image(tensor::Shape s, std::uint64_t seed) {
  Tensor<float> t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal() * 0.5);
  return t;
}

WeightsBlob random_blob(const NetworkSpec& spec, std::uint64_t seed) {
  Network<float> net(spec);
  init_weights(net, seed);
  return extract_weights(net);
}

TEST(Network, BuildsAndValidatesShapes) {
  Network<float> net(tiny_spec());
  EXPECT_EQ(net.num_layers(), 5U);
  EXPECT_EQ(net.mac_layers().size(), 2U);
  EXPECT_EQ(net.num_classes(), 4U);
  EXPECT_TRUE(net.has_softmax());
}

TEST(Network, RejectsInconsistentClassCount) {
  NetworkSpec bad = tiny_spec();
  bad.num_classes = 7;  // fc outputs 4
  EXPECT_THROW(Network<float>{bad}, ContractViolation);
}

TEST(Network, ForwardMatchesTrace) {
  const auto spec = tiny_spec();
  Network<float> net(spec);
  init_weights(net, 3);
  const auto img = random_image(spec.input, 4);
  const auto out = net.forward(img);
  const auto trace = net.forward_trace(img);
  ASSERT_EQ(trace.acts.size(), net.num_layers());
  ASSERT_EQ(out.size(), trace.output().size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], trace.output()[i]);
}

TEST(Network, TotalMacsMatchesManualCount) {
  Network<float> net(tiny_spec());
  // conv: 2*8*8 outputs x (1*3*3) steps; fc: 32 inputs x 4 outputs.
  EXPECT_EQ(net.total_macs(), 2U * 64U * 9U + 2U * 4U * 4U * 4U);
  EXPECT_EQ(net.total_weights(), 2U * 9U + 32U * 4U);
}

TEST(Network, FaultFreeFaultPathIsIdentity) {
  // forward_with_fault with a zero-effect fault (flip applied twice via two
  // trials is not possible; instead flip a bit and flip it back by running
  // the golden reference): here we check the machinery by applying a MAC
  // fault and verifying only downstream layers differ from golden.
  const auto spec = tiny_spec();
  Network<Half> net(spec);
  const auto blob = random_blob(spec, 5);
  load_weights(net, blob);
  const auto img = tensor::convert<Half>(random_image(spec.input, 6));
  const auto golden = net.forward_trace(img);

  AppliedFault f;
  f.layer = net.mac_layers()[0];
  MacFault mf;
  mf.out_index = 3;
  mf.step = 2;
  mf.site = MacSite::kAccumulator;
  mf.op = fault::FaultOp::flip(14);  // high exponent bit of binary16
  f.faults.mac = mf;

  InjectionRecord rec;
  const auto out = net.forward_with_fault(golden, f, &rec);
  EXPECT_TRUE(rec.applied);
  // The final output differs from golden in at least one element (bit 14
  // flips make huge values that survive ReLU or softmax reweighting).
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (!(out[i] == golden.output()[i])) ++diffs;
  EXPECT_GT(diffs, 0U);
}

TEST(Network, GlobalBufferFaultEqualsFullForwardOnFlippedInput) {
  const auto spec = tiny_spec();
  Network<float> net(spec);
  const auto blob = random_blob(spec, 7);
  load_weights(net, blob);
  const auto img = random_image(spec.input, 8);
  const auto golden = net.forward_trace(img);

  // Fault: flip bit 25 of input element 10 of the FC layer (layer input =
  // maxpool output).
  const std::size_t fc_layer = net.mac_layers()[1];
  AppliedFault f;
  f.layer = fc_layer;
  f.flip_layer_input = true;
  f.input_index = 10;
  f.input_op = fault::FaultOp::flip(25);
  const auto fast = net.forward_with_fault(golden, f);

  // Reference: full forward with the same flip applied at that point.
  Tensor<float> a = img, b;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (i == fc_layer) a[10] = numeric::flip_bit(a[10], 25);
    net.layer(i).forward(a, b);
    std::swap(a, b);
  }
  ASSERT_EQ(fast.size(), a.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_EQ(numeric::numeric_traits<float>::to_bits(fast[i]),
              numeric::numeric_traits<float>::to_bits(a[i]));
}

TEST(Network, ObserverSeesAllLayersFromFaultOnward) {
  const auto spec = tiny_spec();
  Network<float> net(spec);
  load_weights(net, random_blob(spec, 9));
  const auto img = random_image(spec.input, 10);
  const auto golden = net.forward_trace(img);
  AppliedFault f;
  f.layer = 0;
  f.faults.mac = MacFault{0, 0, MacSite::kProduct, fault::FaultOp::flip(30)};
  std::vector<std::size_t> seen;
  Network<float>::LayerObserverFn obs =
      [&](std::size_t layer, tensor::ConstTensorView<float>) {
        seen.push_back(layer);
      };
  (void)net.forward_with_fault(golden, f, nullptr, &obs);
  ASSERT_EQ(seen.size(), net.num_layers());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(Prediction, RankingAndTies) {
  Prediction p;
  p.scores = {0.1, 0.5, 0.2, 0.5};
  EXPECT_EQ(p.top1(), 1U);  // first max wins deterministic tie-break
  const auto top3 = p.topk(3);
  ASSERT_EQ(top3.size(), 3U);
  EXPECT_EQ(top3[0], 1U);
  EXPECT_EQ(top3[1], 3U);
  EXPECT_EQ(top3[2], 2U);
  EXPECT_DOUBLE_EQ(p.top1_score(), 0.5);
}

TEST(Prediction, TopkClampsToSize) {
  Prediction p;
  p.scores = {1.0, 2.0};
  EXPECT_EQ(p.topk(5).size(), 2U);
}

TEST(Zoo, AllSpecsBuildInEveryDType) {
  for (const auto id : zoo::kAllNetworks) {
    const auto spec = zoo::network_spec(id);
    EXPECT_FALSE(spec.layers.empty());
    // Instantiate in representative dtypes; construction validates shapes.
    EXPECT_NO_THROW(Network<float>{spec});
    EXPECT_NO_THROW(Network<Half>{spec});
    EXPECT_NO_THROW(Network<Fx16r10>{spec});
  }
}

TEST(Zoo, TopologiesMatchPaperTable2) {
  const auto count_kind = [](const NetworkSpec& s, LayerKind k) {
    std::size_t n = 0;
    for (const auto& l : s.layers) n += (l.kind == k) ? 1 : 0;
    return n;
  };
  const auto convnet = zoo::network_spec(zoo::NetworkId::kConvNet);
  EXPECT_EQ(count_kind(convnet, LayerKind::kConv), 3U);
  EXPECT_EQ(count_kind(convnet, LayerKind::kFullyConnected), 2U);
  EXPECT_EQ(count_kind(convnet, LayerKind::kLrn), 0U);
  EXPECT_TRUE(convnet.has_softmax());
  EXPECT_EQ(convnet.num_blocks(), 5);

  const auto alex = zoo::network_spec(zoo::NetworkId::kAlexNetS);
  EXPECT_EQ(count_kind(alex, LayerKind::kConv), 5U);
  EXPECT_EQ(count_kind(alex, LayerKind::kFullyConnected), 3U);
  EXPECT_EQ(count_kind(alex, LayerKind::kLrn), 2U);
  EXPECT_TRUE(alex.has_softmax());
  EXPECT_EQ(alex.num_blocks(), 8);

  const auto caffe = zoo::network_spec(zoo::NetworkId::kCaffeNetS);
  EXPECT_EQ(count_kind(caffe, LayerKind::kConv), 5U);
  EXPECT_EQ(count_kind(caffe, LayerKind::kLrn), 2U);

  const auto nin = zoo::network_spec(zoo::NetworkId::kNiNS);
  EXPECT_EQ(count_kind(nin, LayerKind::kConv), 12U);
  EXPECT_EQ(count_kind(nin, LayerKind::kFullyConnected), 0U);
  EXPECT_FALSE(nin.has_softmax());
  EXPECT_EQ(nin.num_blocks(), 12);
}

TEST(Zoo, AlexAndCaffeDifferOnlyInPoolLrnOrder) {
  const auto alex = zoo::network_spec(zoo::NetworkId::kAlexNetS);
  const auto caffe = zoo::network_spec(zoo::NetworkId::kCaffeNetS);
  ASSERT_EQ(alex.layers.size(), caffe.layers.size());
  // AlexNet: ...relu, lrn, pool...; CaffeNet: ...relu, pool, lrn...
  auto kind_seq = [](const NetworkSpec& s) {
    std::vector<LayerKind> kinds;
    for (const auto& l : s.layers) kinds.push_back(l.kind);
    return kinds;
  };
  const auto ka = kind_seq(alex);
  const auto kc = kind_seq(caffe);
  EXPECT_NE(ka, kc);
  // Same multiset of kinds.
  auto sa = ka;
  auto sc = kc;
  std::sort(sa.begin(), sa.end());
  std::sort(sc.begin(), sc.end());
  EXPECT_EQ(sa, sc);
}

TEST(Zoo, ModelFilenames) {
  EXPECT_EQ(zoo::model_filename(zoo::NetworkId::kConvNet), "convnet.dnnfi");
  EXPECT_EQ(zoo::model_filename(zoo::NetworkId::kAlexNetS), "alexnets.dnnfi");
}

TEST(Serialize, RoundTripsSpecAndWeights) {
  const auto spec = tiny_spec();
  const auto blob = random_blob(spec, 11);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnfi_test_model.dnnfi").string();
  save_model(path, spec, blob);
  EXPECT_TRUE(is_model_file(path));
  const Model m = load_model(path);
  EXPECT_EQ(m.spec, spec);
  ASSERT_EQ(m.blob.layers.size(), blob.layers.size());
  for (std::size_t i = 0; i < blob.layers.size(); ++i) {
    EXPECT_EQ(m.blob.layers[i].weights, blob.layers[i].weights);
    EXPECT_EQ(m.blob.layers[i].biases, blob.layers[i].biases);
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnfi_garbage.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a model";
  }
  EXPECT_FALSE(is_model_file(path));
  EXPECT_THROW(load_model(path), std::runtime_error);
  EXPECT_THROW(load_model("/nonexistent/nowhere.dnnfi"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Weights, QuantizedLoadMatchesConversion) {
  const auto spec = tiny_spec();
  const auto blob = random_blob(spec, 13);
  Network<Fx16r10> net(spec);
  load_weights(net, blob);
  const auto& layer = net.layer(net.mac_layers()[0]);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(layer.weights()[i].raw(),
              Fx16r10(static_cast<double>(blob.layers[0].weights[i])).raw());
  }
}

TEST(Weights, SizeMismatchThrows) {
  const auto spec = tiny_spec();
  auto blob = random_blob(spec, 15);
  blob.layers[0].weights.pop_back();
  Network<float> net(spec);
  EXPECT_THROW(load_weights(net, blob), ContractViolation);
}

}  // namespace
}  // namespace dnnfi::dnn
