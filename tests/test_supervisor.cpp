// End-to-end supervisor robustness: these tests exec the real
// dnnfi_campaign binary (path injected as DNNFI_CAMPAIGN_BIN) and assert
// the contract that matters — a supervised campaign's merged stats are
// byte-identical to a monolithic run of the same configuration, no matter
// what is done to the workers in between: SIGKILL mid-shard, a hung
// worker reaped by the heartbeat watchdog, or a poison trial that is
// bisected down to and quarantined.
//
// Failure injection uses the worker's env-gated test hooks
// (DNNFI_TEST_CRASH_ONCE_FILE / DNNFI_TEST_HANG_ONCE_FILE /
// DNNFI_TEST_POISON_TRIAL), which are inert in production.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/checkpoint.h"

namespace dnnfi {
namespace {

namespace fs = std::filesystem;

#ifndef DNNFI_CAMPAIGN_BIN
#error "build must define DNNFI_CAMPAIGN_BIN"
#endif
#ifndef DNNFI_REPO_MODELS
#error "build must define DNNFI_REPO_MODELS"
#endif

// One small campaign configuration shared by every test; small enough
// that a full supervised round trip is a few seconds, large enough for
// several shards per worker.
const char* kCampaignFlags =
    "--network convnet --trials 64 --seed 7 --inputs 4 --batch 16";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Runs `DNNFI_CAMPAIGN_BIN <args>` through the shell with optional extra
/// environment assignments; returns the exit code (-1 on abnormal death).
int run_tool(const std::string& args, const std::string& env = "",
             const std::string& log = "/dev/null") {
  std::ostringstream cmd;
  cmd << "env DNNFI_MODEL_DIR='" << DNNFI_REPO_MODELS << "' " << env << " '"
      << DNNFI_CAMPAIGN_BIN << "' " << args << " >" << log << " 2>&1";
  const int st = std::system(cmd.str().c_str());
  if (st == -1 || !WIFEXITED(st)) return -1;
  return WEXITSTATUS(st);
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dnnfi_test_supervisor_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  /// Monolithic reference stats for kCampaignFlags.
  std::string monolithic() {
    const std::string out = path("mono.stats");
    EXPECT_EQ(run_tool(std::string("run ") + kCampaignFlags +
                           " --no-progress --out " + out,
                       "", path("mono.log")),
              0)
        << read_file(path("mono.log"));
    return read_file(out);
  }

  std::string supervise_flags(const std::string& extra = "") const {
    return std::string("supervise ") + kCampaignFlags +
           " --workers 2 --shard-size 8 --backoff 0.05 --ckpt-dir " +
           (dir_ / "ckpt").string() + " --out " + (dir_ / "sup.stats").string() +
           " " + extra;
  }

  fs::path dir_;
};

TEST_F(SupervisorTest, CleanSupervisedRunMatchesMonolithicByteForByte) {
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());
  ASSERT_EQ(run_tool(supervise_flags(), "", path("sup.log")), 0)
      << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);

  // The merged campaign checkpoint is written alongside and covers the
  // whole range with nothing quarantined.
  const auto ck =
      fault::try_load_shard_checkpoint((dir_ / "ckpt/campaign.ckpt").string());
  ASSERT_TRUE(ck.ok()) << ck.error().to_string();
  EXPECT_TRUE(ck.value().complete);
  EXPECT_EQ(ck.value().shard_begin, 0u);
  EXPECT_EQ(ck.value().shard_end, 64u);
  EXPECT_TRUE(ck.value().aborted_trials.empty());
}

TEST_F(SupervisorTest, SigkilledWorkerIsRetriedAndResumesByteIdentical) {
  const std::string mono = monolithic();
  // The first worker to reach mid-shard SIGKILLs itself (fire-once via the
  // sentinel file); the supervisor must classify worker-crash as retryable,
  // relaunch, resume from the shard checkpoint, and still merge clean.
  ASSERT_EQ(run_tool(supervise_flags(),
                     "DNNFI_TEST_CRASH_ONCE_FILE='" + path("crashed") + "'",
                     path("sup.log")),
            0)
      << read_file(path("sup.log"));
  EXPECT_TRUE(fs::exists(path("crashed"))) << "crash hook never fired";
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  EXPECT_NE(read_file(path("sup.log")).find("worker-crash"),
            std::string::npos);
}

TEST_F(SupervisorTest, HungWorkerIsKilledByHeartbeatWatchdog) {
  const std::string mono = monolithic();
  // The first worker to reach mid-shard stops heartbeating forever; only
  // the watchdog can end it. A short deadline keeps the test fast.
  ASSERT_EQ(run_tool(supervise_flags("--heartbeat-timeout 1.5"),
                     "DNNFI_TEST_HANG_ONCE_FILE='" + path("hung") + "'",
                     path("sup.log")),
            0)
      << read_file(path("sup.log"));
  EXPECT_TRUE(fs::exists(path("hung"))) << "hang hook never fired";
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  EXPECT_NE(read_file(path("sup.log")).find("watchdog"), std::string::npos);
}

TEST_F(SupervisorTest, PoisonTrialIsBisectedToAndQuarantined) {
  // Trial 37 aborts the worker on every attempt. Retries cannot help;
  // bisection must converge on exactly that trial, quarantine it, and
  // complete the campaign with the other 63 trials aggregated.
  ASSERT_EQ(run_tool(supervise_flags(), "DNNFI_TEST_POISON_TRIAL=37",
                     path("sup.log")),
            0)
      << read_file(path("sup.log"));
  const std::string stats = read_file(path("sup.stats"));
  EXPECT_NE(stats.find("\naborted 1\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\naborted_trial 37\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("trials 63\n"), std::string::npos) << stats;

  const auto ck =
      fault::try_load_shard_checkpoint((dir_ / "ckpt/campaign.ckpt").string());
  ASSERT_TRUE(ck.ok()) << ck.error().to_string();
  EXPECT_EQ(ck.value().aborted_trials, (std::vector<std::uint64_t>{37}));
}

TEST_F(SupervisorTest, GracefulSigtermSavesCheckpointAndResumeMatches) {
  const std::string mono = monolithic();
  const std::string ckpt = path("run.ckpt");
  const std::string out = path("resumed.stats");

  // Launch a monolithic run directly (no shell wrapper, so the pid we
  // signal is the tool itself), interrupt it mid-campaign, and expect the
  // distinct "interrupted" exit code plus a loadable checkpoint.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    setenv("DNNFI_MODEL_DIR", DNNFI_REPO_MODELS, 1);
    // Slow the run down enough to be interruptible: many more trials,
    // checkpoint every batch.
    execl(DNNFI_CAMPAIGN_BIN, DNNFI_CAMPAIGN_BIN, "run", "--network",
          "convnet", "--trials", "100000", "--seed", "7", "--inputs", "4",
          "--batch", "16", "--no-progress", "--checkpoint", ckpt.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  // Give it time to load the model and fold at least one batch, then ask
  // for a graceful stop.
  for (int i = 0; i < 200 && !fs::exists(ckpt); ++i) usleep(100 * 1000);
  ASSERT_TRUE(fs::exists(ckpt)) << "no checkpoint appeared within 20s";
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int st = 0;
  ASSERT_EQ(waitpid(pid, &st, 0), pid);
  ASSERT_TRUE(WIFEXITED(st)) << "tool died on the signal instead of exiting";
  EXPECT_EQ(WEXITSTATUS(st), exit_code(Errc::kInterrupted));

  const auto ck = fault::try_load_shard_checkpoint(ckpt);
  ASSERT_TRUE(ck.ok()) << ck.error().to_string();
  EXPECT_FALSE(ck.value().complete);
  EXPECT_GT(ck.value().next_trial, 0u);

  // A fresh 64-trial campaign over the same seed still matches the
  // monolithic reference — the interrupted run shares its prefix but must
  // not have disturbed anything global (model cache, results dirs).
  ASSERT_EQ(run_tool(std::string("run ") + kCampaignFlags +
                         " --no-progress --out " + out,
                     "", path("rerun.log")),
            0)
      << read_file(path("rerun.log"));
  EXPECT_EQ(read_file(out), mono);
}

}  // namespace
}  // namespace dnnfi
