// FIT-rate arithmetic (Eq. 1), occupancy accounting, and budget verdicts.
#include <gtest/gtest.h>

#include "dnnfi/dnn/zoo.h"
#include "dnnfi/fit/fit.h"

namespace dnnfi::fit {
namespace {

TEST(Constants, RawRateProvenance) {
  // 20.49 is the paper's 16 nm projection of Neale's corrected 28 nm rate.
  EXPECT_DOUBLE_EQ(kRawFitPerMbit, 20.49);
  EXPECT_DOUBLE_EQ(kNeale28nmFitPerMbit, 157.62);
  EXPECT_DOUBLE_EQ(kNealeCorrection, 0.65);
  // The corrected 28 nm rate bounds the projected 16 nm rate from above.
  EXPECT_LT(kRawFitPerMbit, kNeale28nmFitPerMbit * kNealeCorrection);
  EXPECT_DOUBLE_EQ(kIso26262SocBudgetFit, 10.0);
}

TEST(ComponentFit, LinearInBothFactors) {
  const double one_mbit = 1024.0 * 1024.0;
  EXPECT_DOUBLE_EQ(component_fit(one_mbit, 1.0), kRawFitPerMbit);
  EXPECT_DOUBLE_EQ(component_fit(one_mbit, 0.5), kRawFitPerMbit / 2);
  EXPECT_DOUBLE_EQ(component_fit(2 * one_mbit, 0.5), kRawFitPerMbit);
  EXPECT_DOUBLE_EQ(component_fit(0, 1.0), 0.0);
}

TEST(ComponentFit, RejectsBadInputs) {
  EXPECT_THROW(component_fit(-1, 0.5), ContractViolation);
  EXPECT_THROW(component_fit(10, 1.5), ContractViolation);
}

TEST(DatapathFit, ScalesWithWidthAndPes) {
  // 4 latches x 16 bits x 1344 PEs = 86016 bits.
  EXPECT_DOUBLE_EQ(datapath_bits(numeric::DType::kFloat16, 1344), 86016.0);
  EXPECT_DOUBLE_EQ(datapath_bits(numeric::DType::kFloat, 1344), 172032.0);
  // Sanity: FLOAT16 datapath with 0.5% SDC lands near the paper's 0.009
  // order of magnitude for AlexNet (Table 6).
  const double f = datapath_fit(numeric::DType::kFloat16, 1344, 0.005);
  EXPECT_GT(f, 0.005);
  EXPECT_LT(f, 0.02);
}

TEST(OccupiedBits, WeightedByResidencyAndCapped) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet);
  const auto fp = accel::analyze(spec);
  const auto cfg = accel::eyeriss_16nm();

  const double gb = occupied_bits(fp, accel::BufferKind::kGlobalBuffer, cfg);
  // Between the smallest and largest per-layer ifmap footprint (in bits).
  double lo = 1e300, hi = 0;
  for (const auto& f : fp) {
    const double bits = static_cast<double>(f.input_elems) * 16.0;
    lo = std::min(lo, bits);
    hi = std::max(hi, bits);
  }
  EXPECT_GE(gb, lo);
  EXPECT_LE(gb, hi);
  // Never exceeds the physical structure.
  EXPECT_LE(gb, static_cast<double>(cfg.total_bits(accel::BufferKind::kGlobalBuffer)));
}

TEST(OccupiedBits, TinyBuffersAreCappedByCapacity) {
  const auto spec = dnn::zoo::network_spec(dnn::zoo::NetworkId::kAlexNetS);
  const auto fp = accel::analyze(spec);
  auto cfg = accel::eyeriss_65nm();
  cfg.num_pes = 1;  // shrink to force the cap
  const double fs = occupied_bits(fp, accel::BufferKind::kFilterSram, cfg);
  EXPECT_LE(fs, static_cast<double>(cfg.total_bits(accel::BufferKind::kFilterSram)) + 1e-9);
}

TEST(BufferFit, ProportionalToSdc) {
  const auto fp = accel::analyze(dnn::zoo::network_spec(dnn::zoo::NetworkId::kConvNet));
  const auto cfg = accel::eyeriss_16nm();
  const double f1 = buffer_fit(fp, accel::BufferKind::kGlobalBuffer, cfg, 0.2);
  const double f2 = buffer_fit(fp, accel::BufferKind::kGlobalBuffer, cfg, 0.4);
  EXPECT_NEAR(f2, 2 * f1, 1e-9);
}

TEST(TotalFit, SumsRows) {
  std::vector<ComponentFitRow> rows = {
      {"a", 0, 0, 1.5}, {"b", 0, 0, 2.25}, {"c", 0, 0, 0.25}};
  EXPECT_DOUBLE_EQ(total_fit(rows), 4.0);
  EXPECT_DOUBLE_EQ(total_fit({}), 0.0);
}

TEST(IsoVerdict, PassAndFail) {
  EXPECT_NE(iso_verdict(5.0, 10.0).find("PASS"), std::string::npos);
  const auto fail = iso_verdict(100.0, 10.0);
  EXPECT_NE(fail.find("FAIL"), std::string::npos);
  EXPECT_NE(fail.find("10x"), std::string::npos);
  EXPECT_THROW(iso_verdict(1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace dnnfi::fit
