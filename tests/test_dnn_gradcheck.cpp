// Numerical gradient checks: every layer's backward is validated against
// central finite differences of its forward, for inputs, weights, and
// biases. These are the property tests guaranteeing the trainer optimizes
// the true loss.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/layers.h"

namespace dnnfi::dnn {
namespace {

using tensor::chw;
using tensor::Tensor;
using tensor::vec;

constexpr double kEps = 1e-4;
constexpr double kTol = 2e-2;  // relative, with absolute floor below

/// Scalar loss used to probe gradients: weighted sum of outputs with fixed
/// pseudo-random weights (exposes every output element).
double probe_loss(const Tensor<double>& out, Rng probe_seed) {
  double loss = 0;
  Rng rng = probe_seed;
  for (std::size_t i = 0; i < out.size(); ++i)
    loss += out[i] * (rng.uniform() - 0.5);
  return loss;
}

Tensor<double> probe_grad(const tensor::Shape& s, Rng probe_seed) {
  Tensor<double> g(s);
  Rng rng = probe_seed;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = rng.uniform() - 0.5;
  return g;
}

void expect_close(double analytic, double numeric, const char* what,
                  std::size_t index) {
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-3});
  EXPECT_LT(std::abs(analytic - numeric) / denom, kTol)
      << what << "[" << index << "]: analytic=" << analytic
      << " numeric=" << numeric;
}

/// Checks dLoss/dIn, dLoss/dW, dLoss/dB of `layer` at `in`.
void grad_check(Layer<double>& layer, const Tensor<double>& in) {
  Tensor<double> out;
  layer.forward(in, out);
  const Rng probe(777);

  Tensor<double> gout = probe_grad(out.shape(), probe);
  Tensor<double> gin;
  std::vector<double> gw(layer.weights().size(), 0.0);
  std::vector<double> gb(layer.biases().size(), 0.0);
  layer.backward(in, out, gout, gin, gw, gb);

  // Input gradients.
  Tensor<double> probe_in = in;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double v = probe_in[i];
    probe_in[i] = v + kEps;
    Tensor<double> o1;
    layer.forward(probe_in, o1);
    probe_in[i] = v - kEps;
    Tensor<double> o2;
    layer.forward(probe_in, o2);
    probe_in[i] = v;
    const double num = (probe_loss(o1, probe) - probe_loss(o2, probe)) / (2 * kEps);
    expect_close(gin[i], num, "gin", i);
  }
  // Weight gradients.
  auto w = layer.weights();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double v = w[i];
    w[i] = v + kEps;
    Tensor<double> o1;
    layer.forward(in, o1);
    w[i] = v - kEps;
    Tensor<double> o2;
    layer.forward(in, o2);
    w[i] = v;
    const double num = (probe_loss(o1, probe) - probe_loss(o2, probe)) / (2 * kEps);
    expect_close(gw[i], num, "gw", i);
  }
  // Bias gradients.
  auto b = layer.biases();
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double v = b[i];
    b[i] = v + kEps;
    Tensor<double> o1;
    layer.forward(in, o1);
    b[i] = v - kEps;
    Tensor<double> o2;
    layer.forward(in, o2);
    b[i] = v;
    const double num = (probe_loss(o1, probe) - probe_loss(o2, probe)) / (2 * kEps);
    expect_close(gb[i], num, "gb", i);
  }
}

Tensor<double> smooth_input(tensor::Shape s, std::uint64_t seed) {
  Tensor<double> t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal() * 0.7;
  return t;
}

TEST(GradCheck, ConvBasic) {
  Conv2d<double> conv("c", 1, 2, 3, 3, 1, 1);
  Rng rng(1);
  for (auto& w : conv.weights()) w = rng.normal() * 0.4;
  for (auto& b : conv.biases()) b = rng.normal() * 0.1;
  grad_check(conv, smooth_input(chw(2, 5, 5), 2));
}

TEST(GradCheck, ConvStride2NoPad) {
  Conv2d<double> conv("c", 1, 2, 2, 3, 2, 0);
  Rng rng(3);
  for (auto& w : conv.weights()) w = rng.normal() * 0.4;
  for (auto& b : conv.biases()) b = rng.normal() * 0.1;
  grad_check(conv, smooth_input(chw(2, 7, 7), 4));
}

TEST(GradCheck, Conv1x1) {
  Conv2d<double> conv("c", 1, 3, 2, 1, 1, 0);
  Rng rng(5);
  for (auto& w : conv.weights()) w = rng.normal() * 0.4;
  grad_check(conv, smooth_input(chw(3, 4, 4), 6));
}

TEST(GradCheck, FullyConnected) {
  FullyConnected<double> fc("fc", 1, 6, 4);
  Rng rng(7);
  for (auto& w : fc.weights()) w = rng.normal() * 0.4;
  for (auto& b : fc.biases()) b = rng.normal() * 0.1;
  grad_check(fc, smooth_input(vec(6), 8));
}

TEST(GradCheck, ReluAwayFromKink) {
  Relu<double> relu("r", 1);
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor<double> in = smooth_input(vec(12), 9);
  for (std::size_t i = 0; i < in.size(); ++i)
    if (std::abs(in[i]) < 0.05) in[i] = 0.2;
  grad_check(relu, in);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  MaxPool2d<double> pool("p", 1, 2, 2);
  Tensor<double> in = smooth_input(chw(2, 4, 4), 10);
  grad_check(pool, in);
}

TEST(GradCheck, Lrn) {
  Lrn<double> lrn("n", 1, 3, 0.5, 0.75, 1.0);
  grad_check(lrn, smooth_input(chw(5, 2, 2), 11));
}

TEST(GradCheck, LrnPaperParameters) {
  Lrn<double> lrn("n", 1, 5, 1e-4, 0.75, 1.0);
  grad_check(lrn, smooth_input(chw(7, 2, 2), 12));
}

TEST(GradCheck, Softmax) {
  Softmax<double> sm("s", 1);
  grad_check(sm, smooth_input(vec(5), 13));
}

TEST(GradCheck, GlobalAvgPool) {
  GlobalAvgPool<double> gap("g", 1);
  grad_check(gap, smooth_input(chw(3, 3, 3), 14));
}

}  // namespace
}  // namespace dnnfi::dnn
