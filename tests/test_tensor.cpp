// Tensor container, conversions, and the comparison metrics used by the
// error-propagation analyses.
#include <gtest/gtest.h>

#include "dnnfi/numeric/fixed.h"
#include "dnnfi/numeric/half.h"
#include "dnnfi/tensor/tensor.h"

namespace dnnfi::tensor {
namespace {

using numeric::Fx16r10;
using numeric::Half;

TEST(Shape, SizesAndHelpers) {
  EXPECT_EQ(chw(3, 32, 32).size(), 3U * 32U * 32U);
  EXPECT_EQ(oihw(16, 3, 5, 5).size(), 16U * 3U * 5U * 5U);
  EXPECT_EQ(vec(10).size(), 10U);
  EXPECT_EQ((Shape{2, 3, 4, 5}.size()), 120U);
}

TEST(Shape, RowMajorIndexing) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.index(0, 0, 0, 0), 0U);
  EXPECT_EQ(s.index(0, 0, 0, 1), 1U);
  EXPECT_EQ(s.index(0, 0, 1, 0), 5U);
  EXPECT_EQ(s.index(0, 1, 0, 0), 20U);
  EXPECT_EQ(s.index(1, 0, 0, 0), 60U);
  EXPECT_EQ(s.index(1, 2, 3, 4), 119U);
}

TEST(Shape, IndexOutOfRangeThrows) {
  const Shape s{1, 2, 3, 4};
  EXPECT_THROW(s.index(1, 0, 0, 0), dnnfi::ContractViolation);
  EXPECT_THROW(s.index(0, 2, 0, 0), dnnfi::ContractViolation);
  EXPECT_THROW(s.index(0, 0, 3, 0), dnnfi::ContractViolation);
  EXPECT_THROW(s.index(0, 0, 0, 4), dnnfi::ContractViolation);
}

TEST(Tensor, ConstructZeroFilled) {
  Tensor<float> t(chw(2, 3, 3));
  EXPECT_EQ(t.size(), 18U);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, AtAndFlatAgree) {
  Tensor<float> t(chw(2, 3, 4));
  t.at(0, 1, 2, 3) = 42.0F;
  EXPECT_EQ(t[t.shape().index(0, 1, 2, 3)], 42.0F);
}

TEST(Tensor, BoundsCheckedAccess) {
  Tensor<float> t(vec(4));
  EXPECT_THROW(t[4], dnnfi::ContractViolation);
}

TEST(Tensor, FillAndReshape) {
  Tensor<float> t(vec(4));
  t.fill(2.5F);
  EXPECT_EQ(t[3], 2.5F);
  t.reshape(chw(1, 2, 2));
  EXPECT_EQ(t.size(), 4U);
  EXPECT_EQ(t[0], 0.0F);  // reshape zero-fills
}

TEST(Convert, FloatToHalfQuantizes) {
  Tensor<float> f(vec(3));
  f[0] = 1.0F;
  f[1] = 0.1F;
  f[2] = 70000.0F;  // overflows half
  const Tensor<Half> h = convert<Half>(f);
  EXPECT_EQ(static_cast<float>(h[0]), 1.0F);
  EXPECT_NEAR(static_cast<float>(h[1]), 0.1F, 1e-4F);
  EXPECT_TRUE(h[2].is_inf());
}

TEST(Convert, FloatToFixedSaturates) {
  Tensor<float> f(vec(2));
  f[0] = 100.0F;
  f[1] = -0.5F;
  const auto x = convert<Fx16r10>(f);
  EXPECT_EQ(x[0].raw(), Fx16r10::kRawMax);
  EXPECT_DOUBLE_EQ(static_cast<double>(x[1]), -0.5);
}

TEST(Convert, ShapePreserved) {
  Tensor<double> d(chw(3, 4, 5));
  const auto f = convert<float>(d);
  EXPECT_EQ(f.shape(), d.shape());
}

TEST(Euclid, ZeroForIdentical) {
  Tensor<float> a(vec(10));
  a.fill(1.5F);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(Euclid, MatchesHandComputation) {
  Tensor<float> a(vec(2)), b(vec(2));
  a[0] = 3.0F;
  b[1] = 4.0F;
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
}

TEST(Euclid, ShapeMismatchThrows) {
  Tensor<float> a(vec(2)), b(vec(3));
  EXPECT_THROW(euclidean_distance(a, b), dnnfi::ContractViolation);
}

TEST(Euclid, NonFiniteDeltasAreClamped) {
  Tensor<float> a(vec(1)), b(vec(1));
  a[0] = std::numeric_limits<float>::infinity();
  const double d = euclidean_distance(a, b);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 1e29);
}

TEST(BitwiseMismatch, CountsExactDifferences) {
  Tensor<Half> a(vec(4)), b(vec(4));
  for (std::size_t i = 0; i < 4; ++i) a[i] = b[i] = Half(1.0F + static_cast<float>(i));
  EXPECT_EQ(bitwise_mismatch_count(a, b), 0U);
  b[1] = Half::from_bits(static_cast<std::uint16_t>(b[1].bits() ^ 1U));
  b[3] = Half(99.0F);
  EXPECT_EQ(bitwise_mismatch_count(a, b), 2U);
}

TEST(BitwiseMismatch, DistinguishesSignedZeros) {
  Tensor<float> a(vec(1)), b(vec(1));
  a[0] = 0.0F;
  b[0] = -0.0F;
  EXPECT_EQ(bitwise_mismatch_count(a, b), 1U);  // bitwise, not value-wise
}

TEST(ValueRange, MinMax) {
  Tensor<float> t(vec(5));
  t[0] = -3.0F;
  t[1] = 7.0F;
  t[2] = 0.5F;
  const auto [lo, hi] = value_range(t);
  EXPECT_DOUBLE_EQ(lo, -3.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

TEST(ValueRange, EmptyThrows) {
  Tensor<float> t;
  EXPECT_THROW(value_range(t), dnnfi::ContractViolation);
}

}  // namespace
}  // namespace dnnfi::tensor
