// The stratified estimator's statistical guarantees, locked down:
//  - interval coverage: nominal-95% stratified CIs contain the true rate in
//    at least 93 of 100 resampled synthetic campaigns;
//  - allocator sanity against hand-computed optima: the marginal-gain rule
//    reduces to the Neyman allocation, retired/zero-variance components get
//    only their pilot trials, ties and remainders land deterministically;
//  - regression lock: `--sampler uniform` is the seed semantics — same
//    fingerprint, same shard bytes, same v3 stats — no matter how the
//    stratified knobs are set.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/adaptive_sampler.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/stats_io.h"

namespace dnnfi::fault {
namespace {

using dnn::SpecBuilder;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Synthetic campaigns: known per-stratum rates driven through the real
// controller, exactly like the stratified campaign keys its substreams.
// ---------------------------------------------------------------------------

struct SyntheticStratum {
  double weight;
  double rate;  // true P(hit | stratum)
};

double truth_of(const std::vector<SyntheticStratum>& pop) {
  double t = 0;
  for (const SyntheticStratum& s : pop) t += s.weight * s.rate;
  return t;
}

std::vector<StratumCounts> simulate(const std::vector<SyntheticStratum>& pop,
                                    const StratifiedOptions& opt,
                                    std::uint64_t budget, std::uint64_t seed) {
  std::vector<StratumCounts> s(pop.size());
  for (std::size_t h = 0; h < pop.size(); ++h) s[h].weight = pop[h].weight;
  std::uint64_t spent = 0;
  while (spent < budget) {
    const std::vector<std::uint64_t> plan =
        next_allocation(s, opt, budget - spent);
    if (plan.empty()) break;
    for (std::size_t h = 0; h < pop.size(); ++h) {
      for (std::uint64_t k = 0; k < plan[h]; ++k) {
        // Bernoulli(rate) from the same keying the campaign uses; 2^-53
        // granularity is far below any rate exercised here.
        Rng rng = derive_stream(seed, h, s[h].n);
        const double u =
            static_cast<double>(rng.below(std::uint64_t{1} << 53)) /
            static_cast<double>(std::uint64_t{1} << 53);
        if (u < pop[h].rate) ++s[h].hits;
        ++s[h].n;
        ++spent;
      }
    }
  }
  return s;
}

TEST(EstimatorStats, CoverageAtLeast93Of100) {
  // The paper's regime: concentrated SDC probability, a long dead tail.
  const std::vector<SyntheticStratum> pop = {
      {0.02, 0.45}, {0.03, 0.20}, {0.05, 0.08}, {0.08, 0.04},
      {0.10, 0.01}, {0.12, 0.004}, {0.15, 0.0}, {0.20, 0.0},
      {0.15, 0.0},  {0.10, 0.0},
  };
  const double truth = truth_of(pop);

  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0;

  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const std::vector<StratumCounts> s = simulate(pop, opt, 2000, seed);
    const StratifiedEstimate e = stratified_estimate(s);
    if (e.est.lo <= truth && truth <= e.est.hi) ++covered;
  }
  EXPECT_GE(covered, 93) << "covered " << covered << "/100, truth " << truth;
}

TEST(EstimatorStats, CoverageHoldsUnderConvergenceStop) {
  // Coverage must survive the adaptive CI-target stop too (the regime where
  // a structurally-optimistic variance rule stops early and undercovers).
  const std::vector<SyntheticStratum> pop = {
      {0.05, 0.30}, {0.10, 0.06}, {0.15, 0.01},
      {0.30, 0.0},  {0.25, 0.0},  {0.15, 0.0},
  };
  const double truth = truth_of(pop);

  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0.01;

  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const std::vector<StratumCounts> s = simulate(pop, opt, 100000, seed);
    const StratifiedEstimate e = stratified_estimate(s);
    EXPECT_LE(e.est.ci95, opt.target_ci + 1e-12);
    if (e.est.lo <= truth && truth <= e.est.hi) ++covered;
  }
  EXPECT_GE(covered, 93) << "covered " << covered << "/100, truth " << truth;
}

// ---------------------------------------------------------------------------
// Estimator unit checks against hand-computed values.
// ---------------------------------------------------------------------------

TEST(EstimatorStats, HandComputedEstimate) {
  // One hit-bearing stratum, one pooled-dead stratum, one unpiloted.
  std::vector<StratumCounts> s(3);
  s[0] = {0.5, 10, 40};  // p̂ = 0.25
  s[1] = {0.3, 0, 20};   // zero pool member
  s[2] = {0.2, 0, 0};    // unpiloted

  const StratifiedEstimate e = stratified_estimate(s);
  EXPECT_DOUBLE_EQ(e.est.p, 0.5 * 0.25);

  // Hit-bearing: priced by the Wilson half-width, W²·(half/z)².
  const double h0 = wilson(10, 40).ci95 / 1.96;
  double var = 0.25 * h0 * h0;
  // Zero pool of one member: skew = 1, exact Clopper–Pearson 97.5% upper
  // bound for 0 hits in 20 trials.
  const double pup = 1.0 - std::pow(0.025, 1.0 / 20.0);
  var += (0.3 * pup / 1.96) * (0.3 * pup / 1.96);
  // Unpiloted: maximally honest W²/4.
  var += 0.04 * 0.25;
  EXPECT_NEAR(e.est.ci95, 1.96 * std::sqrt(var), 1e-12);
  EXPECT_EQ(e.est.hits, 10u);
  EXPECT_EQ(e.est.n, 60u);
}

TEST(EstimatorStats, ZeroPoolSkewHandComputed) {
  // Two dead strata with weight proportions 3:1 but equal trials: the
  // heavier member is over-represented in weight by 1.5x relative to its
  // trial share, so skew = (0.3/0.4)/(10/20) = 1.5.
  std::vector<StratumCounts> s(3);
  s[0] = {0.3, 0, 10};
  s[1] = {0.1, 0, 10};
  s[2] = {0.6, 5, 50};  // hit-bearing: not pooled

  const ZeroPool pool = zero_pool(s);
  EXPECT_DOUBLE_EQ(pool.weight, 0.4);
  EXPECT_EQ(pool.n, 20u);
  EXPECT_DOUBLE_EQ(pool.skew, 1.5);

  // Variance whose normal fold has half-width W_Z·skew·p_up at the exact
  // Clopper–Pearson 97.5% upper bound for 0 hits in 20 trials.
  const double pup = 1.0 - std::pow(0.025, 1.0 / 20.0);
  const double half = 0.4 * 1.5 * pup;
  EXPECT_NEAR(zero_pool_variance(pool), half * half / (1.96 * 1.96), 1e-15);
}

TEST(EstimatorStats, ConvergedStratumThreshold) {
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.target_ci = 0.01;

  StratumCounts s{0.5, 3, 100};
  // Never converged while under the pilot or with no target.
  EXPECT_FALSE(stratum_converged({0.5, 0, 3}, opt, 4));
  StratifiedOptions budget = opt;
  budget.target_ci = 0;
  EXPECT_FALSE(stratum_converged(s, budget, 4));

  // Threshold is weight·wilson_half ≤ target/(2√C), hand-checked both ways.
  const double half = wilson(3, 100).ci95;
  const double contrib = 0.5 * half;
  StratifiedOptions tight = opt;
  tight.target_ci = contrib * 2.0 * std::sqrt(4.0) * 0.99;
  EXPECT_FALSE(stratum_converged(s, tight, 4));
  StratifiedOptions loose = opt;
  loose.target_ci = contrib * 2.0 * std::sqrt(4.0) * 1.01;
  EXPECT_TRUE(stratum_converged(s, loose, 4));
}

// ---------------------------------------------------------------------------
// Allocator sanity against hand-computed optima.
// ---------------------------------------------------------------------------

TEST(EstimatorStats, PilotFillsInStratumOrder) {
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  std::vector<StratumCounts> s(3);
  s[0] = {0.2, 0, 0};
  s[1] = {0.3, 1, 2};
  s[2] = {0.5, 0, 4};  // pilot already met

  // Budget-truncated pilot fills strictly in stratum order.
  EXPECT_EQ(next_allocation(s, opt, 5),
            (std::vector<std::uint64_t>{4, 1, 0}));
  // Ample budget completes the pilot before any adaptation.
  EXPECT_EQ(next_allocation(s, opt, 1000),
            (std::vector<std::uint64_t>{4, 2, 0}));
  // Zero budget: done.
  EXPECT_TRUE(next_allocation(s, opt, 0).empty());
}

TEST(EstimatorStats, NeymanWeightDominance) {
  // Two hit-bearing strata, identical counts, weights 2:1. The marginal
  // gain W²·p̃(1-p̃)/n² is 4:1, so largest-remainder apportionment of a
  // 64-trial round gives quotas 51.2 and 12.8 — hand-computed plan {51,13}.
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0;
  std::vector<StratumCounts> s(2);
  s[0] = {0.6, 10, 20};
  s[1] = {0.3, 10, 20};
  EXPECT_EQ(next_allocation(s, opt, 1000),
            (std::vector<std::uint64_t>{51, 13}));
}

TEST(EstimatorStats, EqualScoresTieToLowerIndex) {
  // Identical strata, odd round: quotas 1.5 each, the remainder trial goes
  // to the lower index (stable largest-remainder tie-break).
  StratifiedOptions opt;
  opt.pilot = 2;
  opt.round = 3;
  opt.target_ci = 0;
  std::vector<StratumCounts> s(2);
  s[0] = {0.5, 5, 10};
  s[1] = {0.5, 5, 10};
  EXPECT_EQ(next_allocation(s, opt, 1000),
            (std::vector<std::uint64_t>{2, 1}));
}

TEST(EstimatorStats, NeymanStationaryPoint) {
  // At the Neyman allocation n_h ∝ W_h·σ_h the marginal gains equalize, so
  // the round splits ∝ n_h — the allocator holds the optimum it reached.
  // W·σ equal across strata here (0.4·σ(p̃≈.5) vs …), constructed so
  // scores match: W²v/n² equal with n ∝ W√v.
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 30;
  opt.target_ci = 0;
  std::vector<StratumCounts> s(2);
  s[0] = {0.4, 100, 200};  // p̃ ≈ 0.5, W√v ≈ 0.2  → n = 200
  s[1] = {0.4, 100, 200};
  const std::vector<std::uint64_t> plan = next_allocation(s, opt, 1000);
  EXPECT_EQ(plan[0] + plan[1], 30u);
  EXPECT_EQ(plan[0], 15u);
}

TEST(EstimatorStats, ZeroVarianceStrataGetOnlyPilotTrials) {
  // A live hot stratum plus tiny dead strata, with a reachable CI target:
  // the pooled dead strata retire right after the pilot (their collective
  // bound is already negligible against target/(2√C)), so the entire
  // adaptive budget goes to the hot stratum. Hand-check: pool W_Z = 0.004,
  // n_Z = 8, skew = (0.003/0.004)/(4/8) = 1.5, p_up(8) = 1-0.025^(1/8)
  // ≈ 0.369 ⇒ half = 0.004·1.5·0.369 ≈ 0.0022 < 0.01/(2√2) ≈ 0.0035.
  const std::vector<SyntheticStratum> pop = {
      {0.996, 0.5}, {0.003, 0.0}, {0.001, 0.0}};
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0.01;

  const std::vector<StratumCounts> s = simulate(pop, opt, 100000, 17);
  EXPECT_EQ(s[1].n, opt.pilot);
  EXPECT_EQ(s[2].n, opt.pilot);
  EXPECT_GT(s[0].n, 1000u);  // the hot stratum took every adaptive round
  EXPECT_LE(stratified_estimate(s).est.ci95, opt.target_ci);
}

TEST(EstimatorStats, AllComponentsRetiredStops) {
  // Every component under its per-component share ⇒ empty plan, and the
  // campaign-level convergence stop has necessarily fired first (the √C
  // scaling makes "all retired but not converged" impossible).
  StratifiedOptions opt;
  opt.pilot = 4;
  opt.round = 64;
  opt.target_ci = 0.2;
  std::vector<StratumCounts> s(2);
  s[0] = {0.5, 50, 1000};
  s[1] = {0.5, 50, 1000};
  ASSERT_LE(stratified_estimate(s).est.ci95, opt.target_ci);
  EXPECT_TRUE(next_allocation(s, opt, 1000).empty());
}

// ---------------------------------------------------------------------------
// Regression lock: uniform sampling is byte-for-byte the seed semantics.
// ---------------------------------------------------------------------------

dnn::NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(2, 8, 8), 4)
      .conv(3, 3, 1, 1).relu().maxpool(2, 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob() {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, 1);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs(std::size_t n) {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < n; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(2, 8, 8));
    Rng rng = derive_stream(1234, s);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal() * 0.6);
    ex.label = 0;
    v.push_back(std::move(ex));
  }
  return v;
}

TEST(EstimatorStats, UniformSamplerIsSeedSemantics) {
  const Campaign c(tiny_spec(), tiny_blob(), DType::kFloat16, tiny_inputs(2));

  CampaignOptions plain;
  plain.trials = 48;
  plain.seed = 5;

  // Explicit kUniform with every stratified knob perturbed: same identity,
  // same fingerprint, same shard bytes. The stratified axis must be
  // invisible unless selected.
  CampaignOptions uniform = plain;
  uniform.sampler = SamplerMode::kUniform;
  uniform.stratified.pilot = 9;
  uniform.stratified.round = 17;
  uniform.stratified.target_ci = 0.123;

  EXPECT_EQ(sampler_id(plain), "uniform");
  EXPECT_EQ(sampler_id(uniform), "uniform");
  EXPECT_EQ(c.fingerprint(plain), c.fingerprint(uniform));

  const ShardResult a = c.run_shard(plain, {});
  const ShardResult b = c.run_shard(uniform, {});
  EXPECT_EQ(a.acc.bytes(), b.acc.bytes());
  EXPECT_EQ(a.masked_exits, b.masked_exits);

  // Uniform campaigns keep emitting the exact v3 stats header: no sampler
  // line, bytes diff-clean against pre-sampler-axis outputs.
  std::ostringstream os;
  write_stats(os, c.fingerprint(plain), a.acc, a.masked_exits);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("dnnfi-campaign-stats v3\n", 0), 0u);
  EXPECT_EQ(text.find("sampler"), std::string::npos);
  EXPECT_EQ(text.find("strata"), std::string::npos);
}

TEST(EstimatorStats, StratifiedSamplerIdIsCanonical) {
  CampaignOptions opt;
  opt.sampler = SamplerMode::kStratified;
  EXPECT_EQ(sampler_id(opt), "stratified(pilot=4,round=256,ci=0.005)");
  opt.stratified.pilot = 8;
  opt.stratified.round = 128;
  opt.stratified.target_ci = 0.0005;
  EXPECT_EQ(sampler_id(opt), "stratified(pilot=8,round=128,ci=0.0005)");
}

}  // namespace
}  // namespace dnnfi::fault
