// The sharding contract, locked down: per-trial results are a pure function
// of (options, global trial index), so the same campaign produces
// byte-identical records and aggregates at any thread count, under any
// shard partition, and across checkpoint/kill/resume boundaries.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/checkpoint.h"

namespace dnnfi::fault {
namespace {

using dnn::SpecBuilder;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

dnn::NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(2, 8, 8), 4)
      .conv(3, 3, 1, 1).relu().maxpool(2, 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob() {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, 1);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs(std::size_t n) {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < n; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(2, 8, 8));
    Rng rng = derive_stream(1234, s);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal() * 0.6);
    ex.label = 0;
    v.push_back(std::move(ex));
  }
  return v;
}

Campaign tiny_campaign(DType dt) {
  return Campaign(tiny_spec(), tiny_blob(), dt, tiny_inputs(3));
}

CampaignOptions base_options() {
  CampaignOptions opt;
  opt.trials = 96;
  opt.seed = 77;
  opt.record_block_distances = true;
  // A live detector so `detected` is part of the compared state too.
  opt.detector = [](int, double v) { return v > 40.0 || v < -40.0; };
  return opt;
}

/// Byte-exact encoding of everything a trial produced.
void record_bytes(ByteWriter& w, std::uint64_t trial, const TrialRecord& t) {
  w.u64(trial);
  w.u32(static_cast<std::uint32_t>(t.fault.cls));
  w.u32(static_cast<std::uint32_t>(t.fault.latch));
  w.u64(t.fault.mac_ordinal);
  w.u64(t.fault.layer_index);
  w.u32(static_cast<std::uint32_t>(t.fault.block));
  w.u64(t.fault.element);
  w.u64(t.fault.step);
  w.u64(t.fault.out_channel);
  w.u64(t.fault.out_row);
  w.u32(static_cast<std::uint32_t>(t.fault.bit));
  w.u32(static_cast<std::uint32_t>(t.fault.burst));
  w.u8(t.outcome.sdc1 ? 1 : 0);
  w.u8(t.outcome.sdc5 ? 1 : 0);
  w.u8(t.outcome.sdc10 ? 1 : 0);
  w.u8(t.outcome.sdc20 ? 1 : 0);
  w.f64(t.record.corrupted_before);
  w.f64(t.record.corrupted_after);
  w.f64(t.record.act_before);
  w.f64(t.record.act_after);
  w.u8(t.record.zero_to_one ? 1 : 0);
  w.u8(t.record.applied ? 1 : 0);
  w.u64(t.input_index);
  w.u8(t.detected ? 1 : 0);
  w.f64(t.output_corruption);
  w.u64(t.block_distance.size());
  for (const double d : t.block_distance) w.f64(d);
}

struct ShardCapture {
  std::vector<std::uint8_t> records;  // concatenated record encodings
  ShardResult result;
};

ShardCapture capture(const Campaign& c, const CampaignOptions& opt,
                     ShardSpec shard) {
  ShardCapture cap;
  ByteWriter w;
  const TrialSink sink = [&w](std::uint64_t trial, const TrialRecord& t) {
    record_bytes(w, trial, t);
  };
  cap.result = c.run_shard(opt, shard, &sink);
  cap.records = w.take();
  return cap;
}

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("dnnfi_test_" + stem + "_" + std::to_string(::getpid()) + ".ckpt"))
      .string();
}

struct TempFile {
  explicit TempFile(const std::string& stem) : path(temp_path(stem)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string path;
};

// ---------------------------------------------------------------------------
// Thread-count invariance: 1, 2, and 8 workers produce byte-identical
// record streams and aggregates.
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, ThreadCountInvariance) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  CampaignOptions opt = base_options();

  ThreadPool serial(0);
  opt.pool = &serial;
  const ShardCapture ref = capture(c, opt, ShardSpec{});
  ASSERT_TRUE(ref.result.complete);
  ASSERT_EQ(ref.result.acc.trials(), opt.trials);
  ASSERT_FALSE(ref.records.empty());

  for (const std::size_t workers : {2UL, 8UL}) {
    ThreadPool pool(workers);
    opt.pool = &pool;
    const ShardCapture got = capture(c, opt, ShardSpec{});
    EXPECT_EQ(got.records, ref.records) << workers << " workers";
    EXPECT_EQ(got.result.acc.bytes(), ref.result.acc.bytes())
        << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Shard-union invariance: {[0,k) u [k,N)} == [0,N), for two split points
// and two dtypes, both as record streams and as merged aggregates (in both
// merge orders — the merge is exactly commutative).
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, ShardUnionEqualsMonolithic) {
  for (const DType dt : {DType::kFloat16, DType::kFx32r10}) {
    const Campaign c = tiny_campaign(dt);
    const CampaignOptions opt = base_options();
    const ShardCapture whole = capture(c, opt, ShardSpec{});
    ASSERT_TRUE(whole.result.complete);

    for (const std::uint64_t k : {17ULL, 50ULL}) {
      ShardSpec lo, hi;
      lo.begin = 0;
      lo.end = k;
      hi.begin = k;
      hi.end = opt.trials;
      const ShardCapture a = capture(c, opt, lo);
      const ShardCapture b = capture(c, opt, hi);
      ASSERT_TRUE(a.result.complete);
      ASSERT_TRUE(b.result.complete);
      EXPECT_EQ(a.result.acc.trials(), k);
      EXPECT_EQ(b.result.acc.trials(), opt.trials - k);

      // Record streams concatenate to the monolithic stream.
      std::vector<std::uint8_t> joined = a.records;
      joined.insert(joined.end(), b.records.begin(), b.records.end());
      EXPECT_EQ(joined, whole.records) << "dtype " << static_cast<int>(dt)
                                       << " split " << k;

      // Aggregates merge to the monolithic aggregate, in either order.
      OutcomeAccumulator ab = a.result.acc;
      ab.merge(b.result.acc);
      EXPECT_EQ(ab.bytes(), whole.result.acc.bytes());
      OutcomeAccumulator ba = b.result.acc;
      ba.merge(a.result.acc);
      EXPECT_EQ(ba.bytes(), whole.result.acc.bytes());
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint round trip: a run killed mid-shard and resumed from its
// checkpoint finishes with aggregates bit-identical to an uninterrupted run.
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, CheckpointResumeBitIdentical) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  const CampaignOptions opt = base_options();

  const ShardResult uninterrupted = c.run_shard(opt, ShardSpec{});
  ASSERT_TRUE(uninterrupted.complete);

  TempFile ck("resume");
  ShardSpec shard;
  shard.checkpoint = ck.path;
  shard.batch = 16;
  shard.stop_after = 40;
  const ShardResult stopped = c.run_shard(opt, shard);
  EXPECT_FALSE(stopped.complete);
  EXPECT_GE(stopped.next_trial, 40u);
  EXPECT_LT(stopped.next_trial, opt.trials);
  ASSERT_TRUE(std::filesystem::exists(ck.path));

  // The checkpoint on disk holds exactly the stopped run's state.
  const ShardCheckpoint on_disk = load_shard_checkpoint(ck.path);
  EXPECT_EQ(on_disk.next_trial, stopped.next_trial);
  EXPECT_FALSE(on_disk.complete);
  EXPECT_EQ(on_disk.acc.bytes(), stopped.acc.bytes());

  shard.stop_after = 0;
  const ShardResult resumed = c.run_shard(opt, shard);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.acc.bytes(), uninterrupted.acc.bytes());

  // Running once more is a no-op: the checkpoint says complete.
  const ShardResult again = c.run_shard(opt, shard);
  EXPECT_TRUE(again.complete);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.acc.bytes(), uninterrupted.acc.bytes());
}

// ---------------------------------------------------------------------------
// Corruption and mismatch: every structural defect loads as a clean
// CheckpointError, never UB or silent state.
// ---------------------------------------------------------------------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CampaignDeterminism, CorruptCheckpointsFailCleanly) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  const CampaignOptions opt = base_options();
  TempFile ck("corrupt");
  ShardSpec shard;
  shard.checkpoint = ck.path;
  ASSERT_TRUE(c.run_shard(opt, shard).complete);
  const std::vector<char> good = slurp(ck.path);
  ASSERT_GT(good.size(), 40u);

  // Flipped payload byte -> CRC mismatch.
  std::vector<char> flipped = good;
  flipped[good.size() - 3] = static_cast<char>(flipped[good.size() - 3] ^ 0x40);
  spit(ck.path, flipped);
  EXPECT_THROW(c.run_shard(opt, shard), CheckpointError);

  // Truncation -> size/CRC failure, not a crash.
  std::vector<char> truncated(good.begin(), good.begin() + 30);
  spit(ck.path, truncated);
  EXPECT_THROW(c.run_shard(opt, shard), CheckpointError);

  // Wrong magic -> not a checkpoint.
  std::vector<char> magic = good;
  magic[0] = 'X';
  spit(ck.path, magic);
  EXPECT_THROW(c.run_shard(opt, shard), CheckpointError);

  // Wrong version -> explicit version error.
  std::vector<char> version = good;
  version[8] = 9;
  spit(ck.path, version);
  EXPECT_THROW(c.run_shard(opt, shard), CheckpointError);

  // Valid file, different campaign options -> fingerprint mismatch.
  spit(ck.path, good);
  CampaignOptions other = base_options();
  other.seed = opt.seed + 1;
  EXPECT_THROW(c.run_shard(other, shard), CheckpointError);
  // And a different shard range under the same options.
  ShardSpec narrower = shard;
  narrower.begin = 8;
  EXPECT_THROW(c.run_shard(opt, narrower), CheckpointError);
}

// ---------------------------------------------------------------------------
// The streaming aggregates agree with the buffered path on every statistic
// they both compute.
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, AccumulatorMatchesBufferedRun) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  const CampaignOptions opt = base_options();
  const CampaignResult buffered = c.run(opt);
  const ShardResult streamed = c.run_shard(opt, ShardSpec{});

  ASSERT_EQ(buffered.trials.size(), streamed.acc.trials());
  EXPECT_EQ(buffered.sdc1().hits, streamed.acc.sdc1().hits);
  EXPECT_EQ(buffered.sdc5().hits, streamed.acc.sdc5().hits);
  EXPECT_EQ(buffered.sdc10().hits, streamed.acc.sdc10().hits);
  EXPECT_EQ(buffered.sdc20().hits, streamed.acc.sdc20().hits);

  std::size_t detected = 0, reached = 0;
  for (const auto& t : buffered.trials) {
    detected += t.detected ? 1U : 0U;
    reached += t.output_corruption > 0 ? 1U : 0U;
  }
  EXPECT_EQ(streamed.acc.detections(), detected);
  EXPECT_EQ(streamed.acc.reached_output().hits, reached);
}

}  // namespace
}  // namespace dnnfi::fault
