// Compiled-plan engine: bit-exact equivalence of Executor<T> against the
// legacy layer-by-layer execution semantics (plain, traced, and
// fault-patched partial re-execution) for every datapath type, plus
// workspace-reuse hygiene across many consecutive faulty runs.
//
// The references here are hand-rolled per-layer Tensor loops — the exact
// semantics Network<T>::forward* had before it delegated to the executor —
// so the equivalence claim does not depend on the wrappers under test.
#include <gtest/gtest.h>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/executor.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/dnn/zoo.h"

namespace dnnfi::dnn {
namespace {

using tensor::Tensor;

NetworkSpec convnet_spec() { return zoo::network_spec(zoo::NetworkId::kConvNet); }

WeightsBlob random_blob(const NetworkSpec& spec, std::uint64_t seed) {
  Network<float> net(spec);
  init_weights(net, seed);
  return extract_weights(net);
}

template <typename T>
Tensor<T> random_image(const tensor::Shape& s, std::uint64_t seed) {
  Tensor<float> t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal() * 0.5);
  return tensor::convert<T>(t);
}

/// Legacy plain forward: fresh ping-pong Tensors through the compat layer API.
template <typename T>
Tensor<T> legacy_forward(const Network<T>& net, const Tensor<T>& input) {
  Tensor<T> a = input, b;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    net.layer(i).forward(a, b);
    std::swap(a, b);
  }
  return a;
}

/// Legacy trace: every layer output materialized into owning tensors.
template <typename T>
Trace<T> legacy_trace(const Network<T>& net, const Tensor<T>& input) {
  Trace<T> tr;
  tr.input = input;
  tr.acts.resize(net.num_layers());
  const Tensor<T>* cur = &tr.input;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    net.layer(i).forward(*cur, tr.acts[i]);
    cur = &tr.acts[i];
  }
  return tr;
}

/// Legacy faulty run: patch (or recompute on flipped input) at the fault
/// layer, then fresh-Tensor forward through the rest.
template <typename T>
Tensor<T> legacy_fault(const Network<T>& net, const Trace<T>& golden,
                       const AppliedFault& f) {
  Tensor<T> a, b;
  if (f.flip_layer_input) {
    Tensor<T> in = golden.layer_input(f.layer);
    in[f.input_index] =
        detail::storage_apply(in[f.input_index], f.input_op, f.input_storage);
    net.layer(f.layer).forward(in, a);
  } else {
    a = golden.acts[f.layer];
    net.layer(f.layer).apply_faults(golden.layer_input(f.layer), a, f.faults,
                                    nullptr);
  }
  for (std::size_t i = f.layer + 1; i < net.num_layers(); ++i) {
    net.layer(i).forward(a, b);
    std::swap(a, b);
  }
  return a;
}

template <typename T>
void expect_bits_equal(tensor::ConstTensorView<T> got, const Tensor<T>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(numeric::numeric_traits<T>::to_bits(got[i]),
              numeric::numeric_traits<T>::to_bits(want[i]))
        << "element " << i;
}

constexpr MacSite kMacSites[] = {MacSite::kOperandAct, MacSite::kOperandWeight,
                                 MacSite::kProduct, MacSite::kAccumulator};

/// Deterministic fault of class (trial % 4) targeting MAC layer
/// (trial % mac count), with indices derived from the trial number.
template <typename T>
AppliedFault nth_fault(const Network<T>& net, std::size_t trial) {
  const auto& macs = net.mac_layers();
  const std::size_t layer = macs[trial % macs.size()];
  const auto& step = net.plan().steps()[layer];
  const std::size_t out_elems = step.out_shape.size();
  const std::size_t mac_steps = step.macs / out_elems;
  const int bit = static_cast<int>(trial % 10);  // low bits valid for all T

  AppliedFault f;
  f.layer = layer;
  switch (trial % 4) {
    case 0: {
      MacFault mf;
      mf.out_index = trial % out_elems;
      mf.step = trial % mac_steps;
      mf.site = kMacSites[trial % std::size(kMacSites)];
      mf.op = fault::FaultOp::flip(bit);
      f.faults.mac = mf;
      break;
    }
    case 1: {
      WeightFault wf;
      wf.weight_index = (trial * 7) % net.layer(layer).weights().size();
      wf.op = fault::FaultOp::flip(bit);
      f.faults.weight = wf;
      break;
    }
    case 2: {
      ScopedInputFault sf;
      sf.input_index = (trial * 11) % step.in_shape.size();
      sf.out_channel = 0;
      sf.out_row = 0;
      sf.op = fault::FaultOp::flip(bit);
      f.faults.scoped_input = sf;
      break;
    }
    default: {
      f.flip_layer_input = true;
      f.input_index = (trial * 13) % step.in_shape.size();
      f.input_op = fault::FaultOp::flip(bit);
      break;
    }
  }
  return f;
}

template <typename T>
class ExecutorEquivalence : public ::testing::Test {};

using DatapathTypes =
    ::testing::Types<double, float, numeric::Half, numeric::Fx32r26,
                     numeric::Fx32r10, numeric::Fx16r10>;
TYPED_TEST_SUITE(ExecutorEquivalence, DatapathTypes);

TYPED_TEST(ExecutorEquivalence, PlanResolvesShapesAndMacs) {
  using T = TypeParam;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  const ExecutionPlan<T>& plan = net.plan();
  ASSERT_EQ(plan.num_layers(), net.num_layers());
  EXPECT_EQ(plan.input_shape(), spec.input);
  EXPECT_EQ(plan.total_macs(), net.total_macs());
  tensor::Shape shape = spec.input;
  for (std::size_t i = 0; i < plan.num_layers(); ++i) {
    EXPECT_EQ(plan.steps()[i].in_shape, shape);
    shape = net.layer(i).out_shape(shape);
    EXPECT_EQ(plan.steps()[i].out_shape, shape);
    EXPECT_GE(plan.buffer_elems(), shape.size());
  }
  EXPECT_EQ(plan.output_shape().size(), spec.num_classes);
  EXPECT_EQ(plan.arena_elems(), 2 * plan.buffer_elems() +
                                    plan.input_elems() + plan.packed_elems());
}

TYPED_TEST(ExecutorEquivalence, PlainAndTracedMatchLegacy) {
  using T = TypeParam;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  load_weights(net, random_blob(spec, 21));
  const auto img = random_image<T>(spec.input, 22);

  const Tensor<T> want = legacy_forward(net, img);
  const Trace<T> want_trace = legacy_trace(net, img);

  const Executor<T> exec(net.plan());
  Workspace<T> ws(net.plan());
  RunRequest<T> req;
  req.input = img;
  expect_bits_equal<T>(exec.run(ws, req), want);

  Trace<T> got_trace;
  req.trace = &got_trace;
  expect_bits_equal<T>(exec.run(ws, req), want);
  ASSERT_EQ(got_trace.acts.size(), want_trace.acts.size());
  expect_bits_equal<T>(got_trace.input.view(), want_trace.input);
  for (std::size_t i = 0; i < got_trace.acts.size(); ++i)
    expect_bits_equal<T>(got_trace.acts[i].view(), want_trace.acts[i]);
}

TYPED_TEST(ExecutorEquivalence, FaultyRunsMatchLegacyForAllFaultClasses) {
  using T = TypeParam;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  load_weights(net, random_blob(spec, 31));
  const auto img = random_image<T>(spec.input, 32);
  const Trace<T> golden = legacy_trace(net, img);

  const Executor<T> exec(net.plan());
  Workspace<T> ws(net.plan());
  // Eight trials cover all four fault classes on different MAC layers.
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const AppliedFault f = nth_fault(net, trial);
    const Tensor<T> want = legacy_fault(net, golden, f);
    RunRequest<T> req;
    req.golden = &golden;
    req.fault = &f;
    expect_bits_equal<T>(exec.run(ws, req), want);
  }
}

TYPED_TEST(ExecutorEquivalence, NetworkWrappersMatchLegacy) {
  using T = TypeParam;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  load_weights(net, random_blob(spec, 41));
  const auto img = random_image<T>(spec.input, 42);

  expect_bits_equal<T>(net.forward(img).view(), legacy_forward(net, img));
  const Trace<T> golden = net.forward_trace(img);
  const Trace<T> want_trace = legacy_trace(net, img);
  for (std::size_t i = 0; i < want_trace.acts.size(); ++i)
    expect_bits_equal<T>(golden.acts[i].view(), want_trace.acts[i]);

  const AppliedFault f = nth_fault(net, 3);  // global-buffer flip
  expect_bits_equal<T>(net.forward_with_fault(golden, f).view(),
                       legacy_fault(net, golden, f));
}

// A single workspace serving 100 consecutive faulty runs (mixed fault
// classes, mixed layers, two different inputs) must leave no stale data
// behind: every run is compared bit-for-bit against a fresh legacy run.
TEST(ExecutorWorkspaceReuse, HundredFaultyRunsNoStaleData) {
  using T = numeric::Half;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  load_weights(net, random_blob(spec, 51));
  const auto img0 = random_image<T>(spec.input, 52);
  const auto img1 = random_image<T>(spec.input, 53);
  const Trace<T> goldens[2] = {legacy_trace(net, img0),
                               legacy_trace(net, img1)};

  const Executor<T> exec(net.plan());
  Workspace<T> ws;  // deliberately unsized: first run binds it
  for (std::size_t trial = 0; trial < 100; ++trial) {
    const Trace<T>& golden = goldens[trial % 2];
    const AppliedFault f = nth_fault(net, trial);
    const Tensor<T> want = legacy_fault(net, golden, f);
    RunRequest<T> req;
    req.golden = &golden;
    req.fault = &f;
    const auto got = exec.run(ws, req);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(numeric::numeric_traits<T>::to_bits(got[i]),
                numeric::numeric_traits<T>::to_bits(want[i]))
          << "trial " << trial << " element " << i;
  }
}

// The observer surfaces every recomputed layer exactly once, in order,
// and its views must alias live arena contents (spot-check: the final
// observed view equals the returned output).
TEST(ExecutorObserver, SeesRecomputedLayersInOrder) {
  using T = float;
  const auto spec = convnet_spec();
  Network<T> net(spec);
  load_weights(net, random_blob(spec, 61));
  const auto img = random_image<T>(spec.input, 62);
  const Trace<T> golden = legacy_trace(net, img);

  const AppliedFault f = nth_fault(net, 5);  // second MAC layer, weight fault
  std::vector<std::size_t> seen;
  Tensor<T> last;
  const LayerObserver<T> observer =
      [&](std::size_t layer, tensor::ConstTensorView<T> act) {
        seen.push_back(layer);
        last.assign(act);
      };
  const Executor<T> exec(net.plan());
  Workspace<T> ws(net.plan());
  RunRequest<T> req;
  req.golden = &golden;
  req.fault = &f;
  req.observer = &observer;
  const auto out = exec.run(ws, req);

  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), f.layer);
  EXPECT_EQ(seen.back(), net.num_layers() - 1);
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  expect_bits_equal<T>(out, last);
}

}  // namespace
}  // namespace dnnfi::dnn
