// Pretrained-model regression tests: the cached zoo models must load, match
// their specs, genuinely classify their datasets, and behave identically
// across deployments. Skipped when the model cache has not been built yet
// (run tools/train_models first).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "dnnfi/data/pretrain.h"
#include "dnnfi/dnn/weights.h"

#ifndef DNNFI_REPO_MODELS
#define DNNFI_REPO_MODELS "models"
#endif

namespace dnnfi {
namespace {

using dnn::zoo::NetworkId;

class PretrainedTest : public ::testing::TestWithParam<NetworkId> {
 protected:
  void SetUp() override {
    ::setenv("DNNFI_MODEL_DIR", DNNFI_REPO_MODELS, 1);
    const std::string path = std::string(DNNFI_REPO_MODELS) + "/" +
                             dnn::zoo::model_filename(GetParam());
    if (!dnn::is_model_file(path))
      GTEST_SKIP() << "model cache missing: " << path
                   << " (run tools/train_models)";
  }
};

TEST_P(PretrainedTest, SpecOnDiskMatchesCode) {
  const dnn::Model m = data::pretrained(GetParam());
  EXPECT_EQ(m.spec, dnn::zoo::network_spec(GetParam()));
  EXPECT_EQ(m.blob.layers.size(),
            dnn::Network<float>(m.spec).mac_layers().size());
}

TEST_P(PretrainedTest, ClassifiesWellAboveChance) {
  const dnn::Model m = data::pretrained(GetParam());
  const double acc = data::test_accuracy(m, 100);
  const auto ds = data::dataset_for(GetParam());
  const double chance = 1.0 / static_cast<double>(ds->num_classes());
  EXPECT_GT(acc, 5.0 * chance) << "accuracy " << acc;
  // ConvNet on the 10-class shapes dataset should be near-perfect.
  if (GetParam() == NetworkId::kConvNet) EXPECT_GT(acc, 0.9);
}

TEST_P(PretrainedTest, QuantizedDeploymentsAgreeOnConfidentInputs) {
  const dnn::Model m = data::pretrained(GetParam());
  const auto ds = data::dataset_for(GetParam());
  const auto net32 = dnn::instantiate<float>(m.spec, m.blob);
  const auto net16 = dnn::instantiate<numeric::Half>(m.spec, m.blob);

  std::size_t checked = 0, agree = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto s = ds->sample(data::kTestSplitBegin + i);
    const auto p32 = net32.classify(tensor::convert<float>(s.image));
    // Only compare on confident predictions; near-ties may legitimately
    // flip under binary16 rounding.
    const auto top2 = p32.topk(2);
    if (p32.scores[top2[0]] < 1.5 * std::abs(p32.scores[top2[1]]) + 0.05)
      continue;
    const auto p16 = net16.classify(tensor::convert<numeric::Half>(s.image));
    ++checked;
    agree += (p16.top1() == p32.top1()) ? 1U : 0U;
  }
  if (checked >= 5) {
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(checked), 0.9);
  }
}

TEST_P(PretrainedTest, GoldenPredictionIsDeterministic) {
  const dnn::Model m = data::pretrained(GetParam());
  const auto ds = data::dataset_for(GetParam());
  const auto net = dnn::instantiate<numeric::Fx16r10>(m.spec, m.blob);
  const auto img = tensor::convert<numeric::Fx16r10>(
      ds->sample(data::kTestSplitBegin).image);
  const auto a = net.forward(img);
  const auto b = net.forward(img);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].raw(), b[i].raw());
}

INSTANTIATE_TEST_SUITE_P(Zoo, PretrainedTest,
                         ::testing::ValuesIn(dnn::zoo::kAllNetworks),
                         [](const auto& info) {
                           std::string n(dnn::zoo::network_name(info.param));
                           std::erase(n, '-');
                           return n;
                         });

}  // namespace
}  // namespace dnnfi
