// Accelerator-geometry interface conformance and the systolic
// column-propagation law. The law under test (DESIGN.md §11): a corrupt
// partial sum in column `col` at step `s` taints exactly the output
// elements e >= first_out whose output channel maps onto that column
// (channel(e) % cols == col) — each as if an accumulator-latch fault had
// struck it at step `s` — and no other element changes by a single bit.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dnnfi/accel/accelerator.h"
#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/layers.h"
#include "dnnfi/dnn/spec.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/sampler.h"

namespace dnnfi {
namespace {

using accel::AcceleratorConfig;
using accel::AcceleratorKind;
using accel::SiteClass;
using tensor::chw;
using tensor::Tensor;

AcceleratorConfig systolic(std::size_t rows, std::size_t cols) {
  AcceleratorConfig cfg;
  cfg.kind = AcceleratorKind::kSystolic;
  cfg.rows = rows;
  cfg.cols = cols;
  return cfg;
}

// ---------------------------------------------------------------------------
// Config parsing: the canonical spelling is the geometry's identity in
// fingerprints and checkpoints, so the round-trip must be exact.

TEST(AcceleratorConfig, ParseRoundTripsCanonicalSpellings) {
  for (const char* s : {"eyeriss", "systolic:16x16", "systolic:8x4",
                        "systolic:1x1", "systolic:256x128"}) {
    const auto cfg = accel::parse_accelerator(s);
    ASSERT_TRUE(cfg.has_value()) << s;
    EXPECT_EQ(cfg->to_string(), s);
  }
  EXPECT_TRUE(accel::parse_accelerator("eyeriss")->is_eyeriss());
  const auto sys = accel::parse_accelerator("systolic:12x34");
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->kind, AcceleratorKind::kSystolic);
  EXPECT_EQ(sys->rows, 12U);
  EXPECT_EQ(sys->cols, 34U);
}

TEST(AcceleratorConfig, ParseRejectsMalformedSpellings) {
  for (const char* s : {"", "tpu", "systolic", "systolic:", "systolic:16",
                        "systolic:16x", "systolic:x16", "systolic:0x16",
                        "systolic:16x0", "systolic:16x16x16", "Eyeriss",
                        "systolic:-4x4"}) {
    EXPECT_FALSE(accel::parse_accelerator(s).has_value()) << s;
  }
}

// ---------------------------------------------------------------------------
// Interface conformance: the Eyeriss model must expose exactly the paper's
// inventory (it IS the seed behaviour), and make_accelerator must dispatch.

TEST(EyerissModel, ConformsToPaperInventory) {
  const accel::AcceleratorModel& m = accel::eyeriss_model();
  EXPECT_STREQ(m.name(), "eyeriss");
  EXPECT_TRUE(m.config().is_eyeriss());
  EXPECT_EQ(m.num_pes(), accel::eyeriss_16nm().num_pes);
  ASSERT_EQ(m.site_classes().size(), accel::kAllSiteClasses.size());
  for (std::size_t i = 0; i < accel::kAllSiteClasses.size(); ++i)
    EXPECT_EQ(m.site_classes()[i], accel::kAllSiteClasses[i]);
  for (const SiteClass c : accel::kAllSiteClasses) EXPECT_TRUE(m.supports(c));
}

TEST(EyerissModel, OccupiedElemsMatchesSharedDataflowAnalysis) {
  const auto spec = dnn::SpecBuilder("g", chw(2, 8, 8), 4)
                        .conv(3, 3, 1, 1).relu().fc(4).softmax().build();
  const auto fps = accel::analyze(spec);
  const accel::AcceleratorModel& m = accel::eyeriss_model();
  for (const auto& fp : fps)
    for (const SiteClass c : accel::kBufferSiteClasses)
      EXPECT_EQ(m.occupied_elems(fp, c),
                accel::occupied_elems(fp, accel::buffer_of(c)));
}

TEST(SystolicArray, InventoryExcludesImgRegAndCountsPes) {
  const auto m = accel::make_accelerator(systolic(8, 12));
  EXPECT_STREQ(m->name(), "systolic");
  EXPECT_EQ(m->num_pes(), 96U);
  EXPECT_FALSE(m->supports(SiteClass::kImgReg));
  for (const SiteClass c :
       {SiteClass::kDatapathLatch, SiteClass::kGlobalBuffer,
        SiteClass::kFilterSram, SiteClass::kPsumReg})
    EXPECT_TRUE(m->supports(c));
  EXPECT_EQ(m->site_classes().size(), 4U);
}

TEST(MakeAccelerator, DispatchesOnKind) {
  EXPECT_STREQ(accel::make_accelerator(AcceleratorConfig{})->name(), "eyeriss");
  const auto m = accel::make_accelerator(systolic(4, 4));
  EXPECT_STREQ(m->name(), "systolic");
  EXPECT_EQ(m->config(), systolic(4, 4));
}

// ---------------------------------------------------------------------------
// Systolic sampling: coordinates stay within the layer footprint and the
// array geometry, and the PE column always matches the output channel's
// round-robin lane (channel % cols) — the invariant the footprint law and
// describe() both build on.

TEST(SystolicArray, SampledCoordinatesRespectGeometryAndFootprint) {
  const auto spec = dnn::SpecBuilder("s", chw(2, 10, 10), 6)
                        .conv(5, 3, 1, 1).relu().fc(6).softmax().build();
  const auto cfg = systolic(8, 4);
  const auto model = accel::make_accelerator(cfg);
  const fault::Sampler sampler(spec, numeric::DType::kFloat16, *model);
  Rng rng(2026);
  for (int i = 0; i < 2000; ++i) {
    for (const SiteClass cls : model->site_classes()) {
      const fault::FaultDescriptor f = sampler.sample(cls, rng);
      EXPECT_EQ(f.geom, AcceleratorKind::kSystolic);
      EXPECT_LT(f.pe_row, cfg.rows);
      EXPECT_LT(f.pe_col, cfg.cols);
      const auto& fp = sampler.footprints()[f.mac_ordinal];
      switch (cls) {
        case SiteClass::kDatapathLatch: {
          if (f.latch == accel::DatapathLatch::kOperandWeight) {
            // Stationary weight latch: element is the flat weight index.
            ASSERT_LT(f.element, fp.weight_elems);
          } else {
            ASSERT_LT(f.element, fp.output_elems);
            const std::size_t ch =
                fp.is_conv ? f.element / (fp.out_shape.h * fp.out_shape.w)
                           : f.element;
            EXPECT_EQ(f.pe_col, ch % cfg.cols);
          }
          EXPECT_LT(f.step, fp.steps);
          break;
        }
        case SiteClass::kPsumReg: {
          ASSERT_LT(f.element, fp.output_elems);
          EXPECT_LT(f.step, fp.steps);
          const std::size_t ch =
              fp.is_conv ? f.element / (fp.out_shape.h * fp.out_shape.w)
                         : f.element;
          EXPECT_EQ(f.pe_col, ch % cfg.cols);
          break;
        }
        case SiteClass::kFilterSram:
          ASSERT_LT(f.element, fp.weight_elems);
          EXPECT_EQ(f.pe_col, (f.element / fp.steps) % cfg.cols);
          break;
        case SiteClass::kGlobalBuffer:
          ASSERT_LT(f.element, fp.input_elems);
          break;
        case SiteClass::kImgReg:
          FAIL() << "img-reg must not be sampled on a systolic array";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Systolic lowering semantics, site by site.

TEST(SystolicArray, PsumAndAccumulatorStrikesLowerToColumnFaults) {
  const auto model = accel::make_accelerator(systolic(8, 4));
  for (const bool psum : {true, false}) {
    accel::SiteCoords c;
    c.cls = psum ? SiteClass::kPsumReg : SiteClass::kDatapathLatch;
    c.latch = accel::DatapathLatch::kAccumulator;
    c.element = 37;
    c.step = 5;
    c.pe_col = 2;
    c.pe_row = 5;
    dnn::AppliedFault af;
    model->lower_site(c, fault::FaultOp::flip(9), std::nullopt, af);
    ASSERT_TRUE(af.faults.column.has_value()) << "psum=" << psum;
    EXPECT_FALSE(af.faults.mac.has_value());
    EXPECT_EQ(af.faults.column->col, 2U);
    EXPECT_EQ(af.faults.column->cols, 4U);
    EXPECT_EQ(af.faults.column->first_out, 37U);
    EXPECT_EQ(af.faults.column->step, 5U);
    EXPECT_EQ(af.faults.column->op, fault::FaultOp::flip(9));
  }
}

TEST(SystolicArray, TransientLatchesLowerToSingleMacFaults) {
  const auto model = accel::make_accelerator(systolic(8, 4));
  for (const auto latch :
       {accel::DatapathLatch::kOperandAct, accel::DatapathLatch::kProduct}) {
    accel::SiteCoords c;
    c.cls = SiteClass::kDatapathLatch;
    c.latch = latch;
    c.element = 11;
    c.step = 3;
    dnn::AppliedFault af;
    model->lower_site(c, fault::FaultOp::flip(4), std::nullopt, af);
    ASSERT_TRUE(af.faults.mac.has_value());
    EXPECT_FALSE(af.faults.column.has_value());
    EXPECT_EQ(af.faults.mac->out_index, 11U);
    EXPECT_EQ(af.faults.mac->step, 3U);
  }
}

TEST(SystolicArray, StationaryWeightLatchStrikesTheResidentWeight) {
  // The weight operand latch holds one (channel, step) weight for the whole
  // tile, so a strike is a WeightFault on flat index channel * steps + step.
  const auto spec = dnn::SpecBuilder("w", chw(2, 6, 6), 4)
                        .conv(4, 3, 1, 1).relu().fc(4).softmax().build();
  const auto cfg = systolic(4, 4);
  const auto model = accel::make_accelerator(cfg);
  const fault::Sampler sampler(spec, numeric::DType::kFloat16, *model);
  fault::SampleConstraint constraint;
  constraint.fixed_latch = accel::DatapathLatch::kOperandWeight;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto f =
        sampler.sample(SiteClass::kDatapathLatch, rng, constraint);
    const auto& fp = sampler.footprints()[f.mac_ordinal];
    ASSERT_LT(f.element, fp.weight_elems);
    const std::size_t ch = f.element / fp.steps;
    EXPECT_EQ(f.pe_col, ch % cfg.cols);
    const auto af = fault::lower(f, {0, 2}, *model);
    ASSERT_TRUE(af.faults.weight.has_value());
    EXPECT_EQ(af.faults.weight->weight_index, f.element);
    EXPECT_FALSE(af.faults.mac.has_value());
    EXPECT_FALSE(af.faults.column.has_value());
  }
}

// ---------------------------------------------------------------------------
// The column-propagation footprint law, at layer level. Equivalence oracle:
// a ColumnFault must equal applying an accumulator MacFault (same step, same
// op) to every footprint element independently, and must leave every
// non-footprint element bit-identical to the golden output.

template <typename Layer, typename T>
void check_column_law(Layer& layer, const Tensor<T>& in, std::size_t cols,
                      std::size_t col, std::size_t first_out,
                      std::size_t step, const fault::FaultOp& op) {
  Tensor<T> golden;
  layer.forward(in, golden);
  const auto& os = golden.shape();
  // Conv outputs map channel-plane-wise onto columns; FC outputs (flat
  // vec(n) shape, one element per output neuron) map element-wise.
  const std::size_t plane = os.c > 1 ? os.h * os.w : 1;

  dnn::LayerFaults faults;
  dnn::ColumnFault cf;
  cf.col = col;
  cf.cols = cols;
  cf.first_out = first_out;
  cf.step = step;
  cf.op = op;
  faults.column = cf;
  Tensor<T> faulty = golden;
  dnn::InjectionRecord rec;
  layer.apply_faults(in, faulty, faults, &rec);
  EXPECT_TRUE(rec.applied);

  using Tr = numeric::numeric_traits<T>;
  for (std::size_t e = 0; e < golden.size(); ++e) {
    const bool in_footprint = e >= first_out && (e / plane) % cols == col;
    if (!in_footprint) {
      EXPECT_EQ(Tr::to_bits(faulty[e]), Tr::to_bits(golden[e]))
          << "element " << e << " outside the column footprint changed";
      continue;
    }
    // Oracle: a lone accumulator-latch fault on exactly this element.
    dnn::LayerFaults single;
    dnn::MacFault mf;
    mf.out_index = e;
    mf.step = step;
    mf.site = dnn::MacSite::kAccumulator;
    mf.op = op;
    single.mac = mf;
    Tensor<T> expect = golden;
    layer.apply_faults(in, expect, single, nullptr);
    EXPECT_EQ(Tr::to_bits(faulty[e]), Tr::to_bits(expect[e]))
        << "element " << e << " differs from the per-element oracle";
  }
}

TEST(ColumnPropagationLaw, ConvFootprintIsExactlyTheDownstreamColumn) {
  auto conv = std::make_unique<dnn::Conv2d<float>>("c", 1, 2, 6, 3, 1, 1);
  Rng rng(41);
  for (auto& w : conv->weights())
    w = static_cast<float>(rng.normal() * 0.3);
  for (auto& b : conv->biases())
    b = static_cast<float>(rng.normal() * 0.1);
  Tensor<float> in(chw(2, 5, 5));
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(rng.normal());

  // plane = 5*5 = 25, 6 channels over 4 columns: channels {1, 5} share
  // column 1. Strike mid-plane so the footprint is a strict subset of both.
  check_column_law(*conv, in, 4, 1, 30, 7, fault::FaultOp::flip(30));
  // set1 on two bits, column 2, from the very first element.
  check_column_law(*conv, in, 4, 2, 0, 0, fault::FaultOp::stuck1(20, 2));
  // Degenerate 1-wide array: every channel flows through column 0.
  check_column_law(*conv, in, 1, 0, 60, 3, fault::FaultOp::flip(22));
}

TEST(ColumnPropagationLaw, FcFootprintIsExactlyTheDownstreamColumn) {
  dnn::FullyConnected<numeric::Half> fc("f", 1, 12, 9);
  Rng rng(43);
  for (auto& w : fc.weights())
    w = numeric::numeric_traits<numeric::Half>::from_double(rng.normal() * 0.2);
  for (auto& b : fc.biases())
    b = numeric::numeric_traits<numeric::Half>::from_double(rng.normal() * 0.1);
  Tensor<numeric::Half> in(tensor::vec(12));
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = numeric::numeric_traits<numeric::Half>::from_double(rng.normal());

  // FC outputs are 1x1 planes: output o maps onto column o % cols.
  check_column_law(fc, in, 4, 1, 2, 5, fault::FaultOp::flip(14));
  check_column_law(fc, in, 3, 0, 0, 0, fault::FaultOp::stuck1(13));
}

// ---------------------------------------------------------------------------
// End-to-end: a sampled psum strike, lowered and applied through lower(),
// corrupts only column-footprint elements of the target layer's output.

TEST(ColumnPropagationLaw, LoweredPsumStrikeHonorsTheLawThroughTheNetwork) {
  const auto spec = dnn::SpecBuilder("n", chw(2, 8, 8), 5)
                        .conv(6, 3, 1, 1).relu().fc(5).softmax().build();
  const auto cfg = systolic(4, 4);
  const auto model = accel::make_accelerator(cfg);
  const fault::Sampler sampler(spec, numeric::DType::kFloat, *model);
  Rng rng(97);
  for (int i = 0; i < 200; ++i) {
    const auto f = sampler.sample(SiteClass::kPsumReg, rng);
    const auto af = fault::lower(f, {0, 2}, *model);
    ASSERT_TRUE(af.faults.column.has_value());
    const auto& c = *af.faults.column;
    EXPECT_EQ(c.cols, cfg.cols);
    EXPECT_EQ(c.first_out, f.element);
    EXPECT_EQ(c.step, f.step);
    EXPECT_EQ(c.col, f.pe_col);
    EXPECT_EQ(c.op, f.effective_op());
  }
}

// ---------------------------------------------------------------------------
// describe() format lock (geometry + op rendering). The exact spelling is
// part of the quarantine-report/log contract.

TEST(Describe, SystolicFormatIsLocked) {
  fault::FaultDescriptor f;
  f.geom = AcceleratorKind::kSystolic;
  f.cls = SiteClass::kPsumReg;
  f.pe_row = 6;
  f.pe_col = 14;
  f.block = 1;
  f.element = 14503;
  f.step = 38;
  f.bit = 0;
  f.op = fault::FaultOp::stuck1(0, 2);
  EXPECT_EQ(f.describe(),
            "systolic pe(6,14) psum-reg set1 mask=0x0003 block 1 elem 14503 "
            "step 38");

  f.cls = SiteClass::kDatapathLatch;
  f.latch = accel::DatapathLatch::kOperandWeight;
  f.op = fault::FaultOp::flip(7);
  f.bit = 7;
  EXPECT_EQ(f.describe(),
            "systolic pe(6,14) datapath/operand-weight toggle mask=0x0080 "
            "block 1 elem 14503 step 38");

  f.cls = SiteClass::kFilterSram;
  EXPECT_EQ(f.describe(),
            "systolic pe(6,14) filter-sram toggle mask=0x0080 block 1 "
            "elem 14503");
}

TEST(Describe, EyerissLegacySingleBitFormatIsUnchanged) {
  // The seed's format, byte for byte: geometry and op render nothing extra
  // for the default (Eyeriss + single-bit toggle) axes.
  fault::FaultDescriptor f;
  f.cls = SiteClass::kPsumReg;
  f.block = 3;
  f.element = 91;
  f.step = 12;
  f.bit = 9;
  f.op = fault::FaultOp::flip(9);
  EXPECT_EQ(f.describe(), "psum-reg block 3 elem 91 step 12 bit 9");
  // A richer op appends its mask description.
  f.op = fault::FaultOp::stuck0(9, 2);
  EXPECT_EQ(f.describe(),
            "psum-reg block 3 elem 91 step 12 bit 9 set0 mask=0x0600");
}

}  // namespace
}  // namespace dnnfi
