// Sharded, resumable, supervised fault-injection campaign runner.
//
// Subcommands:
//   run       --network <name> --dtype <name> [--site <name>] [--trials N]
//             [--seed S] [--shard B:E] [--checkpoint FILE] [--batch N]
//             [--stop-after N] [--bit B] [--layer L] [--inputs N]
//             [--distances] [--out FILE] [--no-progress] [--no-incremental]
//             Runs trial indices [B, E) of an N-trial campaign, streaming
//             records into an accumulator. With --checkpoint, state is saved
//             after every batch and an existing file resumes transparently.
//             --no-incremental disables incremental fault replay (the
//             masked-fault early exit); results are byte-identical either
//             way, the flag only trades speed for a full-replay cross-check.
//   resume    Same flags as run; requires the checkpoint file to exist.
//   merge     [--out FILE] <checkpoint>...
//             Validates that the checkpoints belong to one campaign (equal
//             fingerprints, disjoint complete shards) and merges them. The
//             merged aggregates are bit-identical to a single-process run.
//   supervise Campaign flags plus [--workers W] [--shard-size N]
//             [--ckpt-dir DIR] [--heartbeat-timeout S] [--shard-timeout S]
//             [--max-attempts N] [--backoff S] [--max-quarantine N]
//             Partitions the campaign into shards and runs each in a worker
//             subprocess under a watchdog: hung workers are SIGKILLed,
//             failed shards retry with exponential backoff, repeatedly
//             failing shards are bisected down to the poison trial, which
//             is quarantined instead of aborting the campaign. Crashed
//             workers (and a crashed supervisor) resume from the shard
//             checkpoints in --ckpt-dir. See DESIGN.md §9.
//             Fleet mode: [--hosts h1:slots,h2:slots[:workdir]] or
//             [--hosts-file FILE] runs workers across member hosts over
//             framed stdin/stdout channels (ssh for real hosts, direct
//             exec for localhost entries). Workers ship checkpoints home
//             every batch; a dead host's shards relaunch elsewhere from
//             the last shipped batch. [--host-quarantine S] and
//             [--host-fail-limit N] tune per-host health; SIGHUP re-reads
//             --hosts-file (elastic membership). See DESIGN.md §13.
//   worker    (internal) one supervised shard: `run` plus a heartbeat pipe
//             (--heartbeat-fd), or --frame-io for fleet workers (framed
//             init/beat/checkpoint protocol on stdin/stdout), and
//             taxonomy-coded exit statuses.
//
// SIGINT/SIGTERM trigger a graceful shutdown everywhere: the in-flight
// batch finishes, a final checkpoint is written, and the process exits 4
// instead of dying mid-write.
//
// Exit codes: 0 complete, 2 usage error, 3 stopped before the shard end
// (--stop-after), 4 interrupted (SIGINT/SIGTERM after a clean checkpoint),
// 10-13 retryable failures (I/O, OOM, timeout, crash), 20-24 fatal ones
// (corrupt data, version skew, fingerprint/shard mismatch, quarantine
// overflow), 1 anything unclassified — see common/error.h.
//
// --out writes a deterministic stats dump (counters in decimal, doubles as
// C99 hex floats), so bit-identity across shardings is a textual diff.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dnnfi/common/env.h"
#include "dnnfi/common/error.h"
#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/fault/stats_io.h"
#include "dnnfi/fault/supervisor.h"
#include "dnnfi/fault/transport.h"

namespace {

using namespace dnnfi;
using dnn::zoo::NetworkId;

/// Set by the SIGINT/SIGTERM handler; campaign batch loops poll it.
std::atomic<bool> g_cancel{false};
/// Set by SIGHUP; the fleet supervisor re-reads --hosts-file when it reads
/// true (elastic membership).
std::atomic<bool> g_reload{false};

void on_signal(int) { g_cancel.store(true, std::memory_order_relaxed); }
void on_sighup(int) { g_reload.store(true, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sa.sa_flags = SA_RESTART;  // don't turn in-flight checkpoint writes into EINTR
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = on_sighup;
  sigaction(SIGHUP, &sa, nullptr);
}

[[noreturn]] void usage(const std::string& why) {
  std::cerr
      << "error: " << why << "\n\n"
      << "usage: dnnfi_campaign <run|resume|supervise> --network <name> "
         "[--dtype <name>] [options]\n"
         "       dnnfi_campaign merge [--out FILE] <checkpoint>...\n"
         "  networks: convnet alexnet caffenet nin\n"
         "  dtypes:   DOUBLE FLOAT FLOAT16 32b_rb26 32b_rb10 16b_rb10\n"
         "  sites:    datapath global-buffer filter-sram img-reg psum-reg\n"
         "  accels:   eyeriss systolic:<rows>x<cols>\n"
         "  fault ops: toggle toggle:<n> set0 set1 set0:0x<mask> ...\n"
         "  options:  --trials N --seed S --shard B:E --checkpoint FILE\n"
         "            --batch N --stop-after N --bit B --layer L --inputs N\n"
         "            --accel <geom> --fault-op <op>\n"
         "            --sampler uniform|stratified --pilot N --round-size N\n"
         "            --ci-target X (stratified: 0 disables the CI stop)\n"
         "            --distances --out FILE --no-progress --no-incremental\n"
         "  supervise: --workers W --shard-size N --ckpt-dir DIR\n"
         "            --heartbeat-timeout S --shard-timeout S\n"
         "            --max-attempts N --backoff S --max-quarantine N\n"
         "  fleet:    --hosts host:slots[:workdir],... | --hosts-file FILE\n"
         "            --host-quarantine S --host-fail-limit N\n"
         "            (SIGHUP re-reads --hosts-file mid-campaign)\n";
  std::exit(2);
}

NetworkId parse_network(const std::string& s) {
  if (s == "convnet") return NetworkId::kConvNet;
  if (s == "alexnet") return NetworkId::kAlexNetS;
  if (s == "caffenet") return NetworkId::kCaffeNetS;
  if (s == "nin") return NetworkId::kNiNS;
  usage("unknown network " + s);
}

/// Inverse of parse_network: the CLI token (not the display name), so the
/// supervisor can rebuild a worker command line from parsed options.
const char* cli_network_name(NetworkId id) {
  switch (id) {
    case NetworkId::kConvNet: return "convnet";
    case NetworkId::kAlexNetS: return "alexnet";
    case NetworkId::kCaffeNetS: return "caffenet";
    case NetworkId::kNiNS: return "nin";
  }
  return "convnet";
}

numeric::DType parse_dtype(const std::string& s) {
  for (const auto t : numeric::kAllDTypes)
    if (s == numeric::dtype_name(t)) return t;
  usage("unknown dtype " + s);
}

fault::SiteClass parse_site(const std::string& s) {
  for (const auto c : fault::kAllSiteClasses)
    if (s == fault::site_class_name(c)) return c;
  usage("unknown site " + s);
}

struct Args {
  std::string command;
  NetworkId network = NetworkId::kConvNet;
  numeric::DType dtype = numeric::DType::kFloat16;
  fault::SiteClass site = fault::SiteClass::kDatapathLatch;
  std::size_t trials = 2000;
  std::uint64_t seed = 2017;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;  // 0 = trials
  std::string checkpoint;
  std::size_t batch = 512;
  std::uint64_t stop_after = 0;
  std::optional<int> bit;
  std::optional<int> layer;
  accel::AcceleratorConfig accel;
  fault::FaultOpSpec fault_op;
  fault::SamplerMode sampler = fault::SamplerMode::kUniform;
  fault::StratifiedOptions stratified;
  std::size_t inputs = 8;
  bool distances = false;
  bool incremental = true;
  std::string out;
  bool progress = true;
  std::vector<std::string> files;  // merge operands

  // supervise / worker
  int workers = 2;
  std::uint64_t shard_size = 0;
  std::string ckpt_dir;
  double heartbeat_timeout = 60.0;
  double shard_timeout = 0.0;
  int max_attempts = 3;
  double backoff = 0.25;
  std::size_t max_quarantine = 16;
  int heartbeat_fd = -1;

  // fleet mode
  std::string hosts;
  std::string hosts_file;
  double host_quarantine = 2.0;  ///< quarantine base seconds
  int host_fail_limit = 3;
  bool frame_io = false;  ///< worker: framed protocol on stdin/stdout
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Args a;
  a.command = argv[1];
  bool have_network = false;
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (!key.starts_with("--")) {
      a.files.push_back(key);
      continue;
    }
    if (key == "--distances") {
      a.distances = true;
      continue;
    }
    if (key == "--no-progress") {
      a.progress = false;
      continue;
    }
    if (key == "--no-incremental") {
      a.incremental = false;
      continue;
    }
    if (key == "--frame-io") {
      a.frame_io = true;
      continue;
    }
    if (i + 1 >= argc) usage("missing value for " + key);
    const std::string val = argv[++i];
    if (key == "--network") {
      a.network = parse_network(val);
      have_network = true;
    } else if (key == "--dtype") {
      a.dtype = parse_dtype(val);
    } else if (key == "--site") {
      a.site = parse_site(val);
    } else if (key == "--trials") {
      a.trials = std::stoull(val);
    } else if (key == "--seed") {
      a.seed = std::stoull(val);
    } else if (key == "--shard") {
      const auto colon = val.find(':');
      if (colon == std::string::npos) usage("--shard expects B:E");
      a.shard_begin = std::stoull(val.substr(0, colon));
      a.shard_end = std::stoull(val.substr(colon + 1));
    } else if (key == "--checkpoint") {
      a.checkpoint = val;
    } else if (key == "--batch") {
      a.batch = std::stoull(val);
    } else if (key == "--stop-after") {
      a.stop_after = std::stoull(val);
    } else if (key == "--bit") {
      a.bit = std::stoi(val);
    } else if (key == "--layer") {
      a.layer = std::stoi(val);
    } else if (key == "--accel") {
      const auto cfg = accel::parse_accelerator(val);
      if (!cfg) usage("bad --accel (want eyeriss or systolic:<rows>x<cols>)");
      a.accel = *cfg;
    } else if (key == "--fault-op") {
      const auto spec = fault::FaultOpSpec::parse(val);
      if (!spec)
        usage("bad --fault-op (want toggle|set0|set1[:<n>|:0x<mask>])");
      a.fault_op = *spec;
    } else if (key == "--sampler") {
      if (val == "uniform")
        a.sampler = fault::SamplerMode::kUniform;
      else if (val == "stratified")
        a.sampler = fault::SamplerMode::kStratified;
      else
        usage("bad --sampler (want uniform or stratified)");
    } else if (key == "--pilot") {
      a.stratified.pilot = std::stoull(val);
      if (a.stratified.pilot == 0) usage("--pilot must be positive");
    } else if (key == "--round-size") {
      a.stratified.round = std::stoull(val);
      if (a.stratified.round == 0) usage("--round-size must be positive");
    } else if (key == "--ci-target") {
      a.stratified.target_ci = std::stod(val);
      if (a.stratified.target_ci < 0) usage("--ci-target must be >= 0");
    } else if (key == "--inputs") {
      a.inputs = std::stoull(val);
    } else if (key == "--out") {
      a.out = val;
    } else if (key == "--workers") {
      a.workers = std::stoi(val);
    } else if (key == "--shard-size") {
      a.shard_size = std::stoull(val);
    } else if (key == "--ckpt-dir") {
      a.ckpt_dir = val;
    } else if (key == "--heartbeat-timeout") {
      a.heartbeat_timeout = std::stod(val);
    } else if (key == "--shard-timeout") {
      a.shard_timeout = std::stod(val);
    } else if (key == "--max-attempts") {
      a.max_attempts = std::stoi(val);
    } else if (key == "--backoff") {
      a.backoff = std::stod(val);
    } else if (key == "--max-quarantine") {
      a.max_quarantine = std::stoull(val);
    } else if (key == "--heartbeat-fd") {
      a.heartbeat_fd = std::stoi(val);
    } else if (key == "--hosts") {
      a.hosts = val;
    } else if (key == "--hosts-file") {
      a.hosts_file = val;
    } else if (key == "--host-quarantine") {
      a.host_quarantine = std::stod(val);
      if (a.host_quarantine < 0) usage("--host-quarantine must be >= 0");
    } else if (key == "--host-fail-limit") {
      a.host_fail_limit = std::stoi(val);
      if (a.host_fail_limit < 1) usage("--host-fail-limit must be >= 1");
    } else {
      usage("unknown option " + key);
    }
  }
  if (a.command != "merge" && !have_network) usage("--network is required");
  if (a.command != "merge" &&
      !accel::make_accelerator(a.accel)->supports(a.site))
    usage("site " + std::string(fault::site_class_name(a.site)) +
          " is not in the " + a.accel.to_string() + " site inventory");
  if (a.sampler == fault::SamplerMode::kStratified) {
    // Stratified campaigns are sequential-adaptive over the *whole* site
    // population: no trial-index shards, no pinned axes, no supervision.
    if (a.shard_begin != 0 || a.shard_end != 0)
      usage("--shard is incompatible with --sampler stratified");
    if (a.bit || a.layer)
      usage("--bit/--layer pin a stratification axis; use --sampler uniform");
    if (a.command == "supervise" || a.command == "worker")
      usage("supervise runs uniform campaigns; use run --sampler stratified");
  }
  return a;
}

std::string sampler_cli_id(const Args& a) {
  return a.sampler == fault::SamplerMode::kStratified
             ? a.stratified.to_string()
             : std::string("uniform");
}

fault::StatsAxes stats_axes(const Args& a) {
  return fault::StatsAxes{a.accel.to_string(), a.fault_op.to_string(),
                          sampler_cli_id(a)};
}

std::vector<dnn::Example> test_inputs(NetworkId id, std::size_t n) {
  const auto ds = data::dataset_for(id);
  std::vector<dnn::Example> v;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = ds->sample(data::kTestSplitBegin + i);
    v.push_back(dnn::Example{std::move(s.image), s.label});
  }
  return v;
}

void print_summary(const std::string& title,
                   const fault::OutcomeAccumulator& acc) {
  Table t(title);
  t.header({"metric", "value"});
  const auto row = [&t](const char* name, const fault::Estimate& e) {
    t.row({name, Table::pct_ci(e.p, e.ci95) + " (" + std::to_string(e.hits) +
                     "/" + std::to_string(e.n) + ")"});
  };
  row("SDC-1", acc.sdc1());
  row("SDC-5", acc.sdc5());
  row("SDC-10%", acc.sdc10());
  row("SDC-20%", acc.sdc20());
  row("reached output", acc.reached_output());
  t.print(std::cout);
}

/// Writes the stats dump or exits with the taxonomy code for the failure.
int emit_stats_or_fail(const std::string& path, std::uint64_t fingerprint,
                       const fault::OutcomeAccumulator& acc,
                       std::uint64_t masked_exits,
                       const std::vector<std::uint64_t>& aborted = {},
                       const fault::StatsAxes& axes = {},
                       const fault::StratifiedStatsSection* strat = nullptr) {
  auto written = fault::write_stats_file(path, fingerprint, acc, masked_exits,
                                         aborted, axes, strat);
  if (!written.ok()) {
    std::cerr << "error: " << written.error().to_string() << "\n";
    return exit_code(written.error().code);
  }
  return 0;
}

/// The v5 stats section of a finished stratified run.
fault::StratifiedStatsSection strat_section(const fault::StratifiedResult& r) {
  fault::StratifiedStatsSection s;
  s.strata.reserve(r.strata.size());
  for (std::size_t h = 0; h < r.strata.size(); ++h) {
    fault::StratumStats st;
    st.id = r.strata[h].id();
    st.weight = r.weights[h];
    st.trials = r.per_stratum[h].trials();
    st.sdc1 = r.per_stratum[h].sdc1().hits;
    st.sdc5 = r.per_stratum[h].sdc5().hits;
    st.sdc10 = r.per_stratum[h].sdc10().hits;
    st.sdc20 = r.per_stratum[h].sdc20().hits;
    s.strata.push_back(std::move(st));
  }
  return s;
}

/// Same section rebuilt from a v5 checkpoint (for `merge`): identical bytes
/// to the run-time emission because both reduce to the same counters.
fault::StratifiedStatsSection strat_section(
    const fault::StratifiedCheckpoint& ck) {
  fault::StratifiedStatsSection s;
  s.strata.reserve(ck.strata.size());
  for (const auto& h : ck.strata) {
    fault::StratumStats st;
    st.id = h.id;
    st.weight = h.weight;
    st.trials = h.acc.trials();
    st.sdc1 = h.acc.sdc1().hits;
    st.sdc5 = h.acc.sdc5().hits;
    st.sdc10 = h.acc.sdc10().hits;
    st.sdc20 = h.acc.sdc20().hits;
    s.strata.push_back(std::move(st));
  }
  return s;
}

/// Horvitz–Thompson estimates of a stratified section: unbiased population
/// rates with stratified 95% intervals and the effective sample size.
void print_ht_summary(const fault::StratifiedStatsSection& s,
                      std::uint64_t executed) {
  Table t("stratified estimates (Horvitz–Thompson)");
  t.header({"metric", "estimate", "n_eff"});
  const auto row = [&](const char* name,
                       std::uint64_t fault::StratumStats::*hits) {
    std::vector<fault::StratumCounts> c(s.strata.size());
    for (std::size_t h = 0; h < s.strata.size(); ++h) {
      c[h].weight = s.strata[h].weight;
      c[h].hits = s.strata[h].*hits;
      c[h].n = s.strata[h].trials;
    }
    const fault::StratifiedEstimate e = fault::stratified_estimate(c);
    t.row({name, Table::pct_ci(e.est.p, e.est.ci95),
           std::to_string(static_cast<std::uint64_t>(e.n_eff))});
  };
  row("SDC-1", &fault::StratumStats::sdc1);
  row("SDC-5", &fault::StratumStats::sdc5);
  row("SDC-10%", &fault::StratumStats::sdc10);
  row("SDC-20%", &fault::StratumStats::sdc20);
  t.print(std::cout);
  std::cout << "(" << s.strata.size() << " strata, " << executed
            << " trials executed)\n";
}

fault::CampaignOptions campaign_options(const Args& a) {
  fault::CampaignOptions opt;
  opt.trials = a.trials;
  opt.seed = a.seed;
  opt.site = a.site;
  opt.constraint.fixed_bit = a.bit;
  opt.constraint.fixed_block = a.layer;
  opt.constraint.op_kind = a.fault_op.kind;
  opt.constraint.burst = a.fault_op.burst;
  opt.constraint.op_pattern = a.fault_op.pattern;
  opt.accel = a.accel;
  opt.sampler = a.sampler;
  opt.stratified = a.stratified;
  opt.record_block_distances = a.distances;
  opt.incremental_replay = a.incremental;
  opt.cancel = &g_cancel;
  return opt;
}

/// run/resume with --sampler stratified: the adaptive campaign. Prints the
/// pooled (raw-count) summary plus the HT estimates; --out emits the v5
/// stats file with the per-stratum section.
int cmd_run_stratified(const Args& a) {
  const dnn::Model m = data::pretrained(a.network);
  const fault::Campaign c(m.spec, m.blob, a.dtype,
                          test_inputs(a.network, a.inputs));

  fault::CampaignOptions opt = campaign_options(a);
  if (a.progress) {
    opt.progress = [](const fault::CampaignProgress& p) {
      std::cerr << "\rstratified: " << p.done << "/" << p.end
                << " trial budget, "
                << static_cast<int>(p.trials_per_sec) << "/s, SDC-1 "
                << Table::pct_ci(p.sdc1.p, p.sdc1.ci95) << ", masked "
                << static_cast<int>(p.masked_exit_rate * 100.0) << "%   "
                << std::flush;
    };
  }

  fault::ShardSpec shard;
  shard.checkpoint = a.checkpoint;
  shard.batch = a.batch;
  shard.stop_after = a.stop_after;

  const auto res = c.run_stratified(opt, shard);
  if (a.progress) std::cerr << "\n";

  if (!res.complete) {
    const bool interrupted = g_cancel.load(std::memory_order_relaxed);
    std::cerr << (interrupted ? "interrupted after " : "stopped after ")
              << res.trials << " of " << a.trials << " budgeted trials"
              << (a.checkpoint.empty() ? "" : "; checkpoint saved") << "\n";
    return interrupted ? exit_code(Errc::kInterrupted) : 3;
  }

  print_summary("stratified campaign, " + std::to_string(res.trials) + "/" +
                    std::to_string(a.trials) + " budgeted trials (pooled): " +
                    std::string(dnn::zoo::network_name(a.network)) + " " +
                    std::string(numeric::dtype_name(a.dtype)) + " " +
                    fault::site_class_name(a.site),
                res.pooled);
  const fault::StratifiedStatsSection section = strat_section(res);
  print_ht_summary(section, res.trials);
  std::cerr << "stratified: " << res.rounds << " round(s), "
            << (res.converged ? "converged on the CI target"
                              : "stopped on the trial budget")
            << "\n";
  if (!a.out.empty())
    return emit_stats_or_fail(a.out, c.fingerprint(opt), res.pooled,
                              res.masked_exits, {}, stats_axes(a), &section);
  return 0;
}

int cmd_run(const Args& a, bool resume) {
  if (resume) {
    if (a.checkpoint.empty()) usage("resume requires --checkpoint");
    if (!std::filesystem::exists(a.checkpoint)) {
      std::cerr << "error: checkpoint " << a.checkpoint
                << " does not exist; nothing to resume\n";
      return 1;
    }
  }
  if (a.sampler == fault::SamplerMode::kStratified)
    return cmd_run_stratified(a);
  const dnn::Model m = data::pretrained(a.network);
  const fault::Campaign c(m.spec, m.blob, a.dtype,
                          test_inputs(a.network, a.inputs));

  fault::CampaignOptions opt = campaign_options(a);
  if (a.progress) {
    opt.progress = [](const fault::CampaignProgress& p) {
      const std::uint64_t span = p.end - p.begin;
      std::cerr << "\rshard [" << p.begin << ", " << p.end << "): " << p.done
                << "/" << span << " trials, " << static_cast<int>(p.trials_per_sec)
                << "/s, ETA " << static_cast<int>(p.eta_seconds) << "s, SDC-1 "
                << Table::pct_ci(p.sdc1.p, p.sdc1.ci95) << ", masked "
                << static_cast<int>(p.masked_exit_rate * 100.0) << "%   "
                << std::flush;
    };
  }

  fault::ShardSpec shard;
  shard.begin = a.shard_begin;
  shard.end = a.shard_end;
  shard.checkpoint = a.checkpoint;
  shard.batch = a.batch;
  shard.stop_after = a.stop_after;

  const auto res = c.run_shard(opt, shard);
  if (a.progress) std::cerr << "\n";

  const std::uint64_t end = a.shard_end == 0 ? a.trials : a.shard_end;
  if (!res.complete) {
    const bool interrupted = g_cancel.load(std::memory_order_relaxed);
    std::cerr << (interrupted ? "interrupted at trial " : "stopped at trial ")
              << res.next_trial << " of shard [" << a.shard_begin << ", "
              << end << ")"
              << (a.checkpoint.empty() ? "" : "; checkpoint saved") << "\n";
    return interrupted ? exit_code(Errc::kInterrupted) : 3;
  }
  print_summary("shard [" + std::to_string(a.shard_begin) + ", " +
                    std::to_string(end) + ") of " + std::to_string(a.trials) +
                    " trials: " +
                    std::string(dnn::zoo::network_name(a.network)) + " " +
                    std::string(numeric::dtype_name(a.dtype)) + " " +
                    fault::site_class_name(a.site),
                res.acc);
  if (!a.out.empty())
    return emit_stats_or_fail(a.out, c.fingerprint(opt), res.acc,
                              res.masked_exits, {}, stats_axes(a));
  return 0;
}

// ---- worker mode ---------------------------------------------------------

/// The worker's upstream channel: the classic raw heartbeat pipe
/// (--heartbeat-fd) or the framed fleet protocol (--frame-io).
struct WorkerWire {
  int fd = -1;
  bool framed = false;
};

/// One heartbeat: completed-trial count, as a raw 8-byte little-endian
/// counter or a kBeat frame. Writes ride io_write_full, so a signal landing
/// mid-write (EINTR) or a short pipe write can never truncate a beat. A
/// dead supervisor turns writes into EPIPE noise (SIGPIPE is ignored); the
/// worker keeps going and its checkpoint remains the source of truth.
void heartbeat(const WorkerWire& w, std::uint64_t done) {
  if (w.fd < 0) return;
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i)
    b[i] = static_cast<std::uint8_t>(done >> (8 * i));
  if (w.framed)
    [[maybe_unused]] auto sent =
        fault::send_frame(w.fd, fault::FrameType::kBeat, b, sizeof b);
  else
    [[maybe_unused]] auto wrote = fault::io_write_full(w.fd, b, sizeof b);
}

/// Ships the worker's node-local checkpoint file image home as a
/// kCheckpoint frame (fleet mode; no-op otherwise). Failure is deliberately
/// quiet here: the supervisor's trust-but-verify pass re-runs any shard
/// whose durable copy never landed.
void ship_checkpoint(const WorkerWire& w, const std::string& path) {
  if (w.fd < 0 || !w.framed || path.empty()) return;
  auto bytes = fault::read_checkpoint_bytes(path);
  if (!bytes.ok()) return;
  [[maybe_unused]] auto sent =
      fault::send_frame(w.fd, fault::FrameType::kCheckpoint,
                        bytes.value().data(), bytes.value().size());
}

/// Fires a fail-once fault-injection hook: creates the sentinel file first
/// so the retried worker sees it and runs clean. Test-only (see
/// tests/test_supervisor.cpp); both hooks are inert unless their env var
/// is set.
bool fire_once(const std::optional<std::string>& sentinel) {
  if (!sentinel || std::filesystem::exists(*sentinel)) return false;
  std::ofstream(*sentinel).put('x');
  return true;
}

/// Fleet worker setup: moves the frame stream off stdout (stray prints from
/// anywhere in the library would corrupt frames; they go to stderr instead),
/// then lands the supervisor's init frame — the resume checkpoint image, or
/// an order to discard stale node-local state. Returns the wire, or the
/// exit code to die with.
std::variant<WorkerWire, int> setup_frame_io(const Args& a) {
  WorkerWire wire;
  wire.framed = true;
  wire.fd = dup(1);
  if (wire.fd < 0) {
    std::cerr << "error: cannot dup stdout for frame I/O\n";
    return exit_code(Errc::kTransport);
  }
  dup2(2, 1);

  if (a.checkpoint.empty()) {
    std::cerr << "error: --frame-io requires --checkpoint\n";
    return 2;
  }
  std::error_code ec;
  const auto parent = std::filesystem::path(a.checkpoint).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::cerr << "error: cannot create " << parent.string() << ": "
              << ec.message() << "\n";
    return exit_code(Errc::kIo);
  }

  auto init = fault::read_init_frame(0);
  if (!init.ok()) {
    std::cerr << "error: " << init.error().to_string() << "\n";
    return exit_code(init.error().code);
  }
  if (init.value().has_value()) {
    const auto& image = *init.value();
    auto landed =
        fault::write_checkpoint_bytes(a.checkpoint, image.data(), image.size());
    if (!landed.ok()) {
      std::cerr << "error: " << landed.error().to_string() << "\n";
      return exit_code(landed.error().code);
    }
  } else {
    // Start fresh: a stale checkpoint from an earlier attempt on this node
    // would resurrect state the supervisor has already moved past.
    std::filesystem::remove(a.checkpoint, ec);
  }
  return wire;
}

int cmd_worker(const Args& a) {
  signal(SIGPIPE, SIG_IGN);
  WorkerWire wire;
  if (a.frame_io) {
    auto set_up = setup_frame_io(a);
    if (std::holds_alternative<int>(set_up)) return std::get<int>(set_up);
    wire = std::get<WorkerWire>(set_up);
  } else {
    wire.fd = a.heartbeat_fd;
  }
  heartbeat(wire, 0);  // liveness before the (slow) model load

  // Supervisor-robustness test hooks; inert without the env vars.
  const auto crash_once = env_string("DNNFI_TEST_CRASH_ONCE_FILE");
  const auto hang_once = env_string("DNNFI_TEST_HANG_ONCE_FILE");
  std::optional<std::uint64_t> poison;
  if (const auto p = env_string("DNNFI_TEST_POISON_TRIAL"))
    poison = std::stoull(*p);

  const dnn::Model m = data::pretrained(a.network);
  const fault::Campaign c(m.spec, m.blob, a.dtype,
                          test_inputs(a.network, a.inputs));

  fault::CampaignOptions opt = campaign_options(a);
  const std::uint64_t span =
      (a.shard_end == 0 ? a.trials : a.shard_end) - a.shard_begin;
  // The campaign saves the shard checkpoint *before* invoking progress, so
  // shipping here always ships the batch that was just made durable.
  opt.progress = [&wire, &a, span, &crash_once, &hang_once](
                     const fault::CampaignProgress& p) {
    heartbeat(wire, p.done);
    ship_checkpoint(wire, a.checkpoint);
    if (p.done * 2 >= span) {
      if (fire_once(crash_once)) raise(SIGKILL);
      if (fire_once(hang_once))
        while (true) pause();  // hold the pipe open, beat no more
    }
  };

  fault::ShardSpec shard;
  shard.begin = a.shard_begin;
  shard.end = a.shard_end;
  shard.checkpoint = a.checkpoint;
  shard.batch = a.batch;

  fault::ShardResult res;
  if (poison) {
    // The poison trial aborts the worker the moment its record is streamed
    // — a deterministic stand-in for a trial that reliably crashes or
    // corrupts a worker, exercising bisection + quarantine end to end.
    const std::uint64_t bad = *poison;
    const fault::TrialSink sink = [bad](std::uint64_t trial,
                                        const fault::TrialRecord&) {
      if (trial == bad) std::abort();
    };
    res = c.run_shard(opt, shard, &sink);
  } else {
    res = c.run_shard(opt, shard);
  }
  heartbeat(wire, res.next_trial - a.shard_begin);
  // Final ship: the completion checkpoint must land with the supervisor
  // before exit 0, or trust-but-verify will (correctly) re-run the shard.
  ship_checkpoint(wire, a.checkpoint);
  if (!res.complete)
    return g_cancel.load(std::memory_order_relaxed)
               ? exit_code(Errc::kInterrupted)
               : 3;
  return 0;
}

// ---- supervise mode ------------------------------------------------------

/// The path of this executable, for fork/exec'ing worker copies.
std::string self_binary(const char* argv0) {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
  return argv0;
}

int cmd_supervise(const Args& a, const char* argv0) {
  if (a.ckpt_dir.empty()) usage("supervise requires --ckpt-dir");

  fault::SupervisorOptions so;
  so.binary = self_binary(argv0);
  so.trials = a.trials;
  so.shard_size = a.shard_size;
  so.workers = a.workers;
  so.heartbeat_timeout_s = a.heartbeat_timeout;
  so.shard_timeout_s = a.shard_timeout;
  so.max_attempts = a.max_attempts;
  so.backoff_base_s = a.backoff;
  so.max_quarantine = a.max_quarantine;
  so.checkpoint_dir = a.ckpt_dir;
  so.jitter_seed = a.seed;
  so.verbose = a.progress;
  so.cancel = &g_cancel;
  so.hosts = a.hosts;
  so.hosts_file = a.hosts_file;
  so.reload_hosts = &g_reload;
  so.host_fail_limit = a.host_fail_limit;
  so.quarantine_base_s = a.host_quarantine;
  so.worker_flags = {
      "--network", cli_network_name(a.network),
      "--dtype",   std::string(numeric::dtype_name(a.dtype)),
      "--site",    std::string(fault::site_class_name(a.site)),
      "--trials",  std::to_string(a.trials),
      "--seed",    std::to_string(a.seed),
      "--inputs",  std::to_string(a.inputs),
      "--batch",   std::to_string(a.batch),
      "--accel",   a.accel.to_string(),
      "--fault-op", a.fault_op.to_string(),
  };
  if (a.bit) {
    so.worker_flags.push_back("--bit");
    so.worker_flags.push_back(std::to_string(*a.bit));
  }
  if (a.layer) {
    so.worker_flags.push_back("--layer");
    so.worker_flags.push_back(std::to_string(*a.layer));
  }
  if (a.distances) so.worker_flags.push_back("--distances");
  if (!a.incremental) so.worker_flags.push_back("--no-incremental");

  auto supervised = fault::supervise(so);
  if (!supervised.ok()) {
    std::cerr << "error: " << supervised.error().to_string() << "\n";
    return exit_code(supervised.error().code);
  }
  const fault::SupervisorReport& rep = supervised.value();
  if (rep.cancelled) {
    std::cerr << "supervise: interrupted; shard checkpoints in " << a.ckpt_dir
              << " resume on the next run\n";
    return exit_code(Errc::kInterrupted);
  }

  print_summary("supervised " + std::to_string(a.trials) + " trials: " +
                    std::string(dnn::zoo::network_name(a.network)) + " " +
                    std::string(numeric::dtype_name(a.dtype)) + " " +
                    fault::site_class_name(a.site),
                rep.acc);
  std::cerr << "supervise: " << rep.workers_spawned << " worker(s), "
            << rep.retries << " retr" << (rep.retries == 1 ? "y" : "ies")
            << ", " << rep.watchdog_kills << " watchdog kill(s), "
            << rep.bisections << " bisection(s), " << rep.degradations
            << " degradation(s)\n";
  if (!a.hosts.empty() || !a.hosts_file.empty())
    std::cerr << "fleet: " << rep.checkpoints_shipped
              << " checkpoint(s) shipped, " << rep.retries_elsewhere
              << " retry(s) elsewhere, " << rep.host_quarantines
              << " host quarantine(s)\n";
  if (!rep.aborted_trials.empty()) {
    std::cerr << "supervise: quarantined " << rep.aborted_trials.size()
              << " poison trial(s):";
    for (const std::uint64_t t : rep.aborted_trials) std::cerr << " " << t;
    std::cerr << "\n";
  }
  if (!a.out.empty())
    return emit_stats_or_fail(a.out, rep.fingerprint, rep.acc,
                              rep.masked_exits, rep.aborted_trials,
                              stats_axes(a));
  return 0;
}

// ---- merge ---------------------------------------------------------------

int cmd_merge(const Args& a) {
  if (a.files.empty()) usage("merge needs at least one checkpoint");
  std::vector<fault::ShardCheckpoint> cks;
  for (const auto& f : a.files)
    cks.push_back(fault::load_shard_checkpoint(f));

  for (std::size_t i = 0; i < cks.size(); ++i) {
    if (!cks[i].complete)
      throw fault::CheckpointError(
          Errc::kShardMismatch,
          "shard " + a.files[i] + " is incomplete; finish it before merging");
    if (cks[i].fingerprint != cks[0].fingerprint ||
        cks[i].trials_total != cks[0].trials_total)
      throw fault::CheckpointError(
          Errc::kFingerprintMismatch,
          "shard " + a.files[i] + " belongs to a different campaign than " +
              a.files[0]);
    if (auto axes = fault::validate_checkpoint_axes(
            cks[i], cks[0].accel, cks[0].fault_op, cks[0].sampler);
        !axes.ok())
      throw fault::CheckpointError(axes.error().code,
                                   "shard " + a.files[i] + ": " +
                                       axes.error().message);
  }

  // A stratified campaign is one sequential-adaptive run, so its final
  // checkpoint IS the whole campaign: `merge` degenerates to validating it
  // and re-emitting the stats — byte-identical to the run's own --out,
  // which is what the nightly kill/resume/merge leg diffs.
  if (cks[0].sampler != "uniform") {
    if (cks.size() != 1)
      throw fault::CheckpointError(
          Errc::kShardMismatch,
          "stratified campaigns don't shard; merge accepts exactly one "
          "stratified checkpoint (got " +
              std::to_string(cks.size()) + ")");
    const fault::ShardCheckpoint& ck = cks[0];
    if (!ck.stratified)
      throw fault::CheckpointError(
          Errc::kCorruptData,
          "checkpoint " + a.files[0] +
              ": sampler is stratified but the per-stratum section is "
              "missing");
    print_summary("stratified campaign, " + std::to_string(ck.acc.trials()) +
                      "/" + std::to_string(ck.trials_total) +
                      " budgeted trials (pooled): " + ck.network,
                  ck.acc);
    const fault::StratifiedStatsSection section = strat_section(*ck.stratified);
    print_ht_summary(section, ck.acc.trials());
    if (!a.out.empty())
      return emit_stats_or_fail(
          a.out, ck.fingerprint, ck.acc, ck.masked_exits, {},
          fault::StatsAxes{ck.accel, ck.fault_op, ck.sampler}, &section);
    return 0;
  }
  std::vector<std::size_t> order(cks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return cks[x].shard_begin < cks[y].shard_begin;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (cks[order[i]].shard_begin < cks[order[i - 1]].shard_end)
      throw fault::CheckpointError(
          Errc::kShardMismatch, "shards " + a.files[order[i - 1]] + " and " +
                                    a.files[order[i]] + " overlap");
  }

  fault::OutcomeAccumulator merged;
  std::uint64_t covered = 0;
  std::uint64_t masked = 0;
  std::vector<std::uint64_t> aborted;
  for (const auto& ck : cks) {
    merged.merge(ck.acc);
    covered += ck.shard_end - ck.shard_begin;
    masked += ck.masked_exits;
    aborted.insert(aborted.end(), ck.aborted_trials.begin(),
                   ck.aborted_trials.end());
  }
  if (covered != cks[0].trials_total)
    std::cerr << "note: shards cover " << covered << " of "
              << cks[0].trials_total << " trials\n";

  print_summary("merged " + std::to_string(cks.size()) + " shard(s), " +
                    std::to_string(merged.trials()) + " trials: " +
                    cks[0].network,
                merged);
  if (!a.out.empty())
    return emit_stats_or_fail(
        a.out, cks[0].fingerprint, merged, masked, aborted,
        fault::StatsAxes{cks[0].accel, cks[0].fault_op});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  install_signal_handlers();
  try {
    if (a.command == "run") return cmd_run(a, /*resume=*/false);
    if (a.command == "resume") return cmd_run(a, /*resume=*/true);
    if (a.command == "worker") return cmd_worker(a);
    if (a.command == "supervise") return cmd_supervise(a, argv[0]);
    if (a.command == "merge") return cmd_merge(a);
    usage("unknown command " + a.command);
  } catch (const fault::CheckpointError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code(e.code());
  } catch (const SerialError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code(Errc::kCorruptData);
  } catch (const std::bad_alloc&) {
    std::cerr << "error: out of memory\n";
    return exit_code(Errc::kOutOfMemory);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
