// Sharded, resumable fault-injection campaign runner.
//
// Subcommands:
//   run     --network <name> --dtype <name> [--site <name>] [--trials N]
//           [--seed S] [--shard B:E] [--checkpoint FILE] [--batch N]
//           [--stop-after N] [--bit B] [--layer L] [--inputs N]
//           [--distances] [--out FILE] [--no-progress] [--no-incremental]
//           Runs trial indices [B, E) of an N-trial campaign, streaming
//           records into an accumulator. With --checkpoint, state is saved
//           after every batch and an existing file resumes transparently.
//           --no-incremental disables incremental fault replay (the
//           masked-fault early exit); results are byte-identical either
//           way, the flag only trades speed for a full-replay cross-check.
//   resume  Same flags as run; requires the checkpoint file to exist.
//   merge   [--out FILE] <checkpoint>...
//           Validates that the checkpoints belong to one campaign (equal
//           fingerprints, disjoint complete shards) and merges them. The
//           merged aggregates are bit-identical to a single-process run.
//
// Exit codes: 0 shard/merge complete, 2 usage error, 3 stopped before the
// shard end (--stop-after), 1 anything else (corrupt checkpoint, ...).
//
// --out writes a deterministic stats dump (counters in decimal, doubles as
// C99 hex floats), so bit-identity across shardings is a textual diff.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/checkpoint.h"

namespace {

using namespace dnnfi;
using dnn::zoo::NetworkId;

[[noreturn]] void usage(const std::string& why) {
  std::cerr
      << "error: " << why << "\n\n"
      << "usage: dnnfi_campaign <run|resume> --network <name> "
         "[--dtype <name>] [options]\n"
         "       dnnfi_campaign merge [--out FILE] <checkpoint>...\n"
         "  networks: convnet alexnet caffenet nin\n"
         "  dtypes:   DOUBLE FLOAT FLOAT16 32b_rb26 32b_rb10 16b_rb10\n"
         "  sites:    datapath global-buffer filter-sram img-reg psum-reg\n"
         "  options:  --trials N --seed S --shard B:E --checkpoint FILE\n"
         "            --batch N --stop-after N --bit B --layer L --inputs N\n"
         "            --distances --out FILE --no-progress --no-incremental\n";
  std::exit(2);
}

NetworkId parse_network(const std::string& s) {
  if (s == "convnet") return NetworkId::kConvNet;
  if (s == "alexnet") return NetworkId::kAlexNetS;
  if (s == "caffenet") return NetworkId::kCaffeNetS;
  if (s == "nin") return NetworkId::kNiNS;
  usage("unknown network " + s);
}

numeric::DType parse_dtype(const std::string& s) {
  for (const auto t : numeric::kAllDTypes)
    if (s == numeric::dtype_name(t)) return t;
  usage("unknown dtype " + s);
}

fault::SiteClass parse_site(const std::string& s) {
  for (const auto c : fault::kAllSiteClasses)
    if (s == fault::site_class_name(c)) return c;
  usage("unknown site " + s);
}

struct Args {
  std::string command;
  NetworkId network = NetworkId::kConvNet;
  numeric::DType dtype = numeric::DType::kFloat16;
  fault::SiteClass site = fault::SiteClass::kDatapathLatch;
  std::size_t trials = 2000;
  std::uint64_t seed = 2017;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;  // 0 = trials
  std::string checkpoint;
  std::size_t batch = 512;
  std::uint64_t stop_after = 0;
  std::optional<int> bit;
  std::optional<int> layer;
  std::size_t inputs = 8;
  bool distances = false;
  bool incremental = true;
  std::string out;
  bool progress = true;
  std::vector<std::string> files;  // merge operands
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Args a;
  a.command = argv[1];
  bool have_network = false;
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (!key.starts_with("--")) {
      a.files.push_back(key);
      continue;
    }
    if (key == "--distances") {
      a.distances = true;
      continue;
    }
    if (key == "--no-progress") {
      a.progress = false;
      continue;
    }
    if (key == "--no-incremental") {
      a.incremental = false;
      continue;
    }
    if (i + 1 >= argc) usage("missing value for " + key);
    const std::string val = argv[++i];
    if (key == "--network") {
      a.network = parse_network(val);
      have_network = true;
    } else if (key == "--dtype") {
      a.dtype = parse_dtype(val);
    } else if (key == "--site") {
      a.site = parse_site(val);
    } else if (key == "--trials") {
      a.trials = std::stoull(val);
    } else if (key == "--seed") {
      a.seed = std::stoull(val);
    } else if (key == "--shard") {
      const auto colon = val.find(':');
      if (colon == std::string::npos) usage("--shard expects B:E");
      a.shard_begin = std::stoull(val.substr(0, colon));
      a.shard_end = std::stoull(val.substr(colon + 1));
    } else if (key == "--checkpoint") {
      a.checkpoint = val;
    } else if (key == "--batch") {
      a.batch = std::stoull(val);
    } else if (key == "--stop-after") {
      a.stop_after = std::stoull(val);
    } else if (key == "--bit") {
      a.bit = std::stoi(val);
    } else if (key == "--layer") {
      a.layer = std::stoi(val);
    } else if (key == "--inputs") {
      a.inputs = std::stoull(val);
    } else if (key == "--out") {
      a.out = val;
    } else {
      usage("unknown option " + key);
    }
  }
  if (a.command != "merge" && !have_network) usage("--network is required");
  return a;
}

std::vector<dnn::Example> test_inputs(NetworkId id, std::size_t n) {
  const auto ds = data::dataset_for(id);
  std::vector<dnn::Example> v;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = ds->sample(data::kTestSplitBegin + i);
    v.push_back(dnn::Example{std::move(s.image), s.label});
  }
  return v;
}

/// Deterministic aggregate dump: equal accumulator state <=> equal text.
/// masked_exits is deterministic per trial too, so shardings of one
/// campaign diff clean — but an incremental vs full run of the SAME
/// campaign differs only on that line (full replay never early-exits);
/// cross-mode checks filter it (see tools/nightly_campaign.sh).
void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const fault::OutcomeAccumulator& acc,
                 std::uint64_t masked_exits) {
  os << "dnnfi-campaign-stats v2\n";
  os << "fingerprint " << fingerprint << "\n";
  os << "trials " << acc.trials() << "\n";
  os << "masked_exits " << masked_exits << "\n";
  os << "sdc1 " << acc.sdc1().hits << "\n";
  os << "sdc5 " << acc.sdc5().hits << "\n";
  os << "sdc10 " << acc.sdc10().hits << "\n";
  os << "sdc20 " << acc.sdc20().hits << "\n";
  os << "detections " << acc.detections() << "\n";
  os << "benign_flagged " << acc.benign_flagged() << "\n";
  os << "reached " << acc.reached_output().hits << "\n";
  os << std::hexfloat;
  os << "mean_corruption_reached " << acc.mean_output_corruption_reached()
     << "\n";
  for (std::size_t b = 0; b < acc.num_blocks(); ++b) {
    os << "block " << b + 1 << " live " << std::defaultfloat
       << acc.block_live(b) << " masked " << acc.block_masked(b)
       << " dist_sum " << std::hexfloat << acc.block_distance_sum(b)
       << " log10_mean " << acc.block_log10_mean(b) << "\n";
  }
  os << std::defaultfloat;
}

void write_stats_file(const std::string& path, std::uint64_t fingerprint,
                      const fault::OutcomeAccumulator& acc,
                      std::uint64_t masked_exits) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_stats(out, fingerprint, acc, masked_exits);
}

void print_summary(const std::string& title,
                   const fault::OutcomeAccumulator& acc) {
  Table t(title);
  t.header({"metric", "value"});
  const auto row = [&t](const char* name, const fault::Estimate& e) {
    t.row({name, Table::pct_ci(e.p, e.ci95) + " (" + std::to_string(e.hits) +
                     "/" + std::to_string(e.n) + ")"});
  };
  row("SDC-1", acc.sdc1());
  row("SDC-5", acc.sdc5());
  row("SDC-10%", acc.sdc10());
  row("SDC-20%", acc.sdc20());
  row("reached output", acc.reached_output());
  t.print(std::cout);
}

int cmd_run(const Args& a, bool resume) {
  if (resume) {
    if (a.checkpoint.empty()) usage("resume requires --checkpoint");
    if (!std::filesystem::exists(a.checkpoint)) {
      std::cerr << "error: checkpoint " << a.checkpoint
                << " does not exist; nothing to resume\n";
      return 1;
    }
  }
  const dnn::Model m = data::pretrained(a.network);
  const fault::Campaign c(m.spec, m.blob, a.dtype,
                          test_inputs(a.network, a.inputs));

  fault::CampaignOptions opt;
  opt.trials = a.trials;
  opt.seed = a.seed;
  opt.site = a.site;
  opt.constraint.fixed_bit = a.bit;
  opt.constraint.fixed_block = a.layer;
  opt.record_block_distances = a.distances;
  opt.incremental_replay = a.incremental;
  if (a.progress) {
    opt.progress = [](const fault::CampaignProgress& p) {
      const std::uint64_t span = p.end - p.begin;
      std::cerr << "\rshard [" << p.begin << ", " << p.end << "): " << p.done
                << "/" << span << " trials, " << static_cast<int>(p.trials_per_sec)
                << "/s, ETA " << static_cast<int>(p.eta_seconds) << "s, SDC-1 "
                << Table::pct_ci(p.sdc1.p, p.sdc1.ci95) << ", masked "
                << static_cast<int>(p.masked_exit_rate * 100.0) << "%   "
                << std::flush;
    };
  }

  fault::ShardSpec shard;
  shard.begin = a.shard_begin;
  shard.end = a.shard_end;
  shard.checkpoint = a.checkpoint;
  shard.batch = a.batch;
  shard.stop_after = a.stop_after;

  const auto res = c.run_shard(opt, shard);
  if (a.progress) std::cerr << "\n";

  const std::uint64_t end = a.shard_end == 0 ? a.trials : a.shard_end;
  if (!res.complete) {
    std::cerr << "stopped at trial " << res.next_trial << " of shard ["
              << a.shard_begin << ", " << end << ")"
              << (a.checkpoint.empty() ? "" : "; checkpoint saved") << "\n";
    return 3;
  }
  print_summary("shard [" + std::to_string(a.shard_begin) + ", " +
                    std::to_string(end) + ") of " + std::to_string(a.trials) +
                    " trials: " +
                    std::string(dnn::zoo::network_name(a.network)) + " " +
                    std::string(numeric::dtype_name(a.dtype)) + " " +
                    fault::site_class_name(a.site),
                res.acc);
  if (!a.out.empty())
    write_stats_file(a.out, c.fingerprint(opt), res.acc, res.masked_exits);
  return 0;
}

int cmd_merge(const Args& a) {
  if (a.files.empty()) usage("merge needs at least one checkpoint");
  std::vector<fault::ShardCheckpoint> cks;
  for (const auto& f : a.files)
    cks.push_back(fault::load_shard_checkpoint(f));

  for (std::size_t i = 0; i < cks.size(); ++i) {
    if (!cks[i].complete)
      throw std::runtime_error("shard " + a.files[i] +
                               " is incomplete; finish it before merging");
    if (cks[i].fingerprint != cks[0].fingerprint ||
        cks[i].trials_total != cks[0].trials_total)
      throw std::runtime_error(
          "shard " + a.files[i] +
          " belongs to a different campaign than " + a.files[0]);
  }
  std::vector<std::size_t> order(cks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return cks[x].shard_begin < cks[y].shard_begin;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (cks[order[i]].shard_begin < cks[order[i - 1]].shard_end)
      throw std::runtime_error("shards " + a.files[order[i - 1]] + " and " +
                               a.files[order[i]] + " overlap");
  }

  fault::OutcomeAccumulator merged;
  std::uint64_t covered = 0;
  std::uint64_t masked = 0;
  for (const auto& ck : cks) {
    merged.merge(ck.acc);
    covered += ck.shard_end - ck.shard_begin;
    masked += ck.masked_exits;
  }
  if (covered != cks[0].trials_total)
    std::cerr << "note: shards cover " << covered << " of "
              << cks[0].trials_total << " trials\n";

  print_summary("merged " + std::to_string(cks.size()) + " shard(s), " +
                    std::to_string(merged.trials()) + " trials: " +
                    cks[0].network,
                merged);
  if (!a.out.empty())
    write_stats_file(a.out, cks[0].fingerprint, merged, masked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "run") return cmd_run(a, /*resume=*/false);
    if (a.command == "resume") return cmd_run(a, /*resume=*/true);
    if (a.command == "merge") return cmd_merge(a);
    usage("unknown command " + a.command);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
