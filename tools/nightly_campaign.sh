#!/usr/bin/env bash
# Nightly end-to-end check of the sharded campaign engine (DESIGN.md §7).
#
# Runs a real 2000-trial ConvNet campaign four ways and requires them to
# agree bit-for-bit (stats files serialize doubles as hex floats, so `diff`
# is an exact comparison):
#
#   1. shard [0,1000) killed at 50% via --stop-after, then resumed;
#   2. shard [1000,2000) run straight through;
#   3. the merge of both checkpoints vs. one uninterrupted [0,2000) run;
#   4. the same monolithic run with --no-incremental (full replay, no
#      masked-fault early exit) — identical except the masked_exits line,
#      which is the one field that records how trials were *executed*
#      rather than what they produced.
#
# Usage: tools/nightly_campaign.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CAMPAIGN="$REPO_ROOT/$BUILD_DIR/tools/dnnfi_campaign"
[ -x "$CAMPAIGN" ] || { echo "error: $CAMPAIGN not built" >&2; exit 1; }

# The model cache lives in the repo; without this, the CLI would retrain
# ConvNet from scratch on every nightly run.
export DNNFI_MODEL_DIR="${DNNFI_MODEL_DIR:-$REPO_ROOT/models}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

COMMON=(--network convnet --dtype FLOAT16 --trials 2000 --seed 20170101
        --inputs 8 --distances --no-progress)

echo "== shard A [0,1000): run to 50%, expect exit 3 (stopped) =="
rc=0
"$CAMPAIGN" run "${COMMON[@]}" --shard 0:1000 --batch 100 --stop-after 500 \
    --checkpoint "$WORK/a.ckpt" || rc=$?
[ "$rc" -eq 3 ] || { echo "error: expected exit 3 after --stop-after, got $rc" >&2; exit 1; }

echo "== shard A: resume from checkpoint to completion =="
"$CAMPAIGN" resume "${COMMON[@]}" --shard 0:1000 --batch 100 \
    --checkpoint "$WORK/a.ckpt"

echo "== shard B [1000,2000): uninterrupted =="
"$CAMPAIGN" run "${COMMON[@]}" --shard 1000:2000 --batch 100 \
    --checkpoint "$WORK/b.ckpt"

echo "== merge shards =="
"$CAMPAIGN" merge "$WORK/a.ckpt" "$WORK/b.ckpt" --out "$WORK/merged.stats"

echo "== monolithic [0,2000) reference =="
"$CAMPAIGN" run "${COMMON[@]}" --out "$WORK/full.stats"

echo "== compare =="
if diff -u "$WORK/full.stats" "$WORK/merged.stats"; then
  echo "PASS: resumed+merged shards are bit-identical to the monolithic run"
else
  echo "FAIL: sharded/resumed campaign diverged from the monolithic run" >&2
  exit 1
fi

echo "== full-replay cross-check: --no-incremental [0,2000) =="
"$CAMPAIGN" run "${COMMON[@]}" --no-incremental --out "$WORK/noinc.stats"

# masked_exits counts how trials were executed (early exits), not what they
# produced; it is the only line allowed to differ between modes.
if diff -u <(grep -v '^masked_exits ' "$WORK/full.stats") \
           <(grep -v '^masked_exits ' "$WORK/noinc.stats"); then
  echo "PASS: incremental replay is bit-identical to full replay"
else
  echo "FAIL: incremental replay diverged from full replay" >&2
  exit 1
fi
grep -q '^masked_exits 0$' "$WORK/noinc.stats" || {
  echo "FAIL: full replay reported nonzero masked_exits" >&2; exit 1; }

echo "== supervised campaign with a worker killed -9 mid-flight =="
# The supervisor (DESIGN.md §9) shards the same campaign across worker
# subprocesses. We SIGKILL a live worker mid-campaign — simulating an OOM
# kill or node reaper — and require the supervisor to relaunch the shard,
# resume it from its checkpoint, and still merge bit-identical to the
# monolithic reference.
"$CAMPAIGN" supervise "${COMMON[@]}" --batch 100 --workers 2 \
    --ckpt-dir "$WORK/sup-ckpt" --backoff 0.1 \
    --out "$WORK/sup.stats" 2>"$WORK/sup.log" &
SUP_PID=$!

# Wait for a worker to appear, then kill it the hard way.
VICTIM=""
for _ in $(seq 1 100); do
  VICTIM="$(pgrep -P "$SUP_PID" -f ' worker ' | head -n1 || true)"
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
if [ -n "$VICTIM" ]; then
  kill -9 "$VICTIM" && echo "killed worker pid $VICTIM"
else
  echo "warn: no live worker found to kill (campaign too fast?)" >&2
fi

rc=0; wait "$SUP_PID" || rc=$?
[ "$rc" -eq 0 ] || {
  echo "FAIL: supervise exited $rc" >&2; cat "$WORK/sup.log" >&2; exit 1; }

if diff -u "$WORK/full.stats" "$WORK/sup.stats"; then
  echo "PASS: supervised campaign survived kill -9 bit-identically"
else
  echo "FAIL: supervised campaign diverged after worker kill" >&2
  cat "$WORK/sup.log" >&2
  exit 1
fi

echo "== fleet: two-node supervised campaign, node0 SIGKILLed repeatedly =="
# Fleet mode (DESIGN.md §13): the same 2000-trial campaign spread over two
# localhost fleet nodes (framed stdio transport, per-batch checkpoint
# shipping). One entire "machine" — every worker whose checkpoint lives in
# node0's scratch — is SIGKILLed over and over while node1 stays healthy.
# Stranded shards must be retried elsewhere from their shipped checkpoints
# and the merge must still be bit-identical to the monolithic reference.
"$CAMPAIGN" supervise "${COMMON[@]}" --batch 100 \
    --hosts localhost:2,localhost:2 --max-attempts 100 --host-quarantine 0.5 \
    --ckpt-dir "$WORK/fleet-ckpt" --backoff 0.1 \
    --out "$WORK/fleet.stats" 2>"$WORK/fleet.log" &
SUP_PID=$!
KILLS=0
for _ in $(seq 1 1800); do
  kill -0 "$SUP_PID" 2>/dev/null || break
  if pkill -9 -f "$WORK/fleet-ckpt/node[0]/" 2>/dev/null; then
    KILLS=$((KILLS+1))
  fi
  sleep 0.3
done
rc=0; wait "$SUP_PID" || rc=$?
[ "$rc" -eq 0 ] || {
  echo "FAIL: fleet supervise exited $rc" >&2
  cat "$WORK/fleet.log" >&2; exit 1; }
echo "node0 workers SIGKILLed $KILLS time(s)"
[ "$KILLS" -gt 0 ] || echo "warn: killer never caught a node0 worker" >&2

if diff -u "$WORK/full.stats" "$WORK/fleet.stats"; then
  echo "PASS: two-node fleet survived whole-node kill -9 bit-identically"
else
  echo "FAIL: fleet campaign diverged after node0 kills" >&2
  cat "$WORK/fleet.log" >&2
  exit 1
fi

echo "== systolic geometry: supervised 2k-trial campaign, kill/resume merge =="
# Same contract on the non-default fault-model axes (DESIGN.md §11): a
# weight-stationary systolic array with stuck-at-1 faults. The supervised
# (sharded, killed, resumed, merged) run must be bit-identical to a
# monolithic run of the same campaign, and both must carry the v4 axis
# identity lines in their stats.
SYS=(--network convnet --dtype FLOAT16 --trials 2000 --seed 20170101
     --inputs 8 --distances --no-progress
     --accel systolic:8x8 --fault-op set1)

"$CAMPAIGN" run "${SYS[@]}" --out "$WORK/sys_full.stats"

"$CAMPAIGN" supervise "${SYS[@]}" --batch 100 --workers 2 \
    --ckpt-dir "$WORK/sys-ckpt" --backoff 0.1 \
    --out "$WORK/sys_sup.stats" 2>"$WORK/sys_sup.log" &
SUP_PID=$!
VICTIM=""
for _ in $(seq 1 100); do
  VICTIM="$(pgrep -P "$SUP_PID" -f ' worker ' | head -n1 || true)"
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
if [ -n "$VICTIM" ]; then
  kill -9 "$VICTIM" && echo "killed worker pid $VICTIM"
else
  echo "warn: no live worker found to kill (campaign too fast?)" >&2
fi
rc=0; wait "$SUP_PID" || rc=$?
[ "$rc" -eq 0 ] || {
  echo "FAIL: systolic supervise exited $rc" >&2
  cat "$WORK/sys_sup.log" >&2; exit 1; }

grep -q '^accel systolic:8x8$' "$WORK/sys_sup.stats" || {
  echo "FAIL: systolic stats missing the accel identity line" >&2; exit 1; }
grep -q '^fault_op set1$' "$WORK/sys_sup.stats" || {
  echo "FAIL: systolic stats missing the fault_op identity line" >&2; exit 1; }

if diff -u "$WORK/sys_full.stats" "$WORK/sys_sup.stats"; then
  echo "PASS: systolic supervised campaign merged bit-identically"
else
  echo "FAIL: systolic supervised campaign diverged" >&2
  cat "$WORK/sys_sup.log" >&2
  exit 1
fi

echo "== stratified sampler: kill/resume/merge byte-identity =="
# The adaptive stratified campaign (DESIGN.md §12) makes the same
# determinism promise as the uniform sharded engine: a run stopped by
# --stop-after and resumed from its v5 checkpoint, and a `merge` of that
# finished checkpoint, must both reproduce the uninterrupted run's stats
# file byte-for-byte — per-stratum counts, HT estimate, allocator cursor
# and all. --ci-target 0 disables the convergence stop so the 2000-trial
# budget pins the trial count.
STRAT=(--network convnet --dtype FLOAT16 --trials 2000 --seed 20170101
       --inputs 8 --distances --no-progress
       --sampler stratified --ci-target 0)

"$CAMPAIGN" run "${STRAT[@]}" --out "$WORK/strat_full.stats"

rc=0
"$CAMPAIGN" run "${STRAT[@]}" --batch 100 --stop-after 700 \
    --checkpoint "$WORK/strat.ckpt" || rc=$?
[ "$rc" -eq 3 ] || { echo "error: expected exit 3 after stratified --stop-after, got $rc" >&2; exit 1; }

"$CAMPAIGN" resume "${STRAT[@]}" --batch 100 \
    --checkpoint "$WORK/strat.ckpt" --out "$WORK/strat_resumed.stats"

"$CAMPAIGN" merge "$WORK/strat.ckpt" --out "$WORK/strat_merged.stats"

grep -q '^sampler stratified(' "$WORK/strat_full.stats" || {
  echo "FAIL: stratified stats missing the sampler identity line" >&2; exit 1; }
grep -q '^stratum ' "$WORK/strat_full.stats" || {
  echo "FAIL: stratified stats missing the per-stratum section" >&2; exit 1; }

if diff -u "$WORK/strat_full.stats" "$WORK/strat_resumed.stats" &&
   diff -u "$WORK/strat_full.stats" "$WORK/strat_merged.stats"; then
  echo "PASS: stratified kill/resume and merge are bit-identical"
else
  echo "FAIL: stratified resume or merge diverged from the uninterrupted run" >&2
  exit 1
fi
