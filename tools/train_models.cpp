// Trains (or verifies) the four zoo models and reports held-out accuracy.
// Run once after checkout; all benches and the heavier tests reuse the
// cached model files in <model_dir>.
//
// Usage: train_models [--verbose]
//   DNNFI_MODEL_DIR  cache directory (default "models")

#include <cstring>
#include <iostream>

#include "dnnfi/common/env.h"
#include "dnnfi/data/pretrain.h"

int main(int argc, char** argv) {
  const bool verbose =
      argc > 1 && std::strcmp(argv[1], "--verbose") == 0;
  using namespace dnnfi;
  std::cout << "model dir: " << model_dir() << "\n";
  for (const auto id : dnn::zoo::kAllNetworks) {
    std::cout << "== " << dnn::zoo::network_name(id) << " ==\n" << std::flush;
    const dnn::Model m = data::pretrained(id, verbose);
    const double acc = data::test_accuracy(m, 200);
    const auto ds = data::dataset_for(id);
    std::cout << "  dataset:        " << ds->name() << " ("
              << ds->num_classes() << " classes)\n"
              << "  test accuracy:  " << acc * 100.0 << "% (chance "
              << 100.0 / static_cast<double>(ds->num_classes()) << "%)\n";
  }
  return 0;
}
