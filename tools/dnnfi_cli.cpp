// dnnfi command-line fault-injection runner.
//
// Subcommands:
//   campaign  --network <name> --dtype <name> [--site <name>] [--trials N]
//             [--seed S] [--bit B] [--layer L] [--storage <dtype>]
//             Runs an injection campaign and prints SDC statistics.
//   profile   --network <name> --dtype <name> [--count N]
//             Prints fault-free per-layer value ranges (SED learning data).
//   inject    --network <name> --dtype <name> [--seed S]
//             Runs a single injection and narrates what happened.
//   info      --network <name>
//             Prints topology, MACs, weights, and buffer footprints.
//
// Networks: convnet | alexnet | caffenet | nin
// DTypes:   DOUBLE | FLOAT | FLOAT16 | 32b_rb26 | 32b_rb10 | 16b_rb10
// Sites:    datapath | global-buffer | filter-sram | img-reg | psum-reg
// Accels:   eyeriss (default) | systolic:<rows>x<cols>
// Fault ops: toggle (default) | toggle:<n> | set0[:<n>|:0x<mask>] | set1[...]

#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "dnnfi/common/env.h"
#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fit/fit.h"

namespace {

using namespace dnnfi;
using dnn::zoo::NetworkId;

[[noreturn]] void usage(const char* why) {
  std::cerr << "error: " << why << "\n\n"
            << "usage: dnnfi <campaign|profile|inject|info> --network <name> "
               "[--dtype <name>] [options]\n"
               "  networks: convnet alexnet caffenet nin\n"
               "  dtypes:   DOUBLE FLOAT FLOAT16 32b_rb26 32b_rb10 16b_rb10\n"
               "  sites:    datapath global-buffer filter-sram img-reg psum-reg\n"
               "  accels:   eyeriss systolic:<rows>x<cols>\n"
               "  fault ops: toggle toggle:<n> set0 set1 set0:0x<mask> ...\n"
               "  options:  --trials N --seed S --bit B --layer L --count N "
               "--storage <dtype> --accel <geom> --fault-op <op>\n";
  std::exit(2);
}

NetworkId parse_network(const std::string& s) {
  if (s == "convnet") return NetworkId::kConvNet;
  if (s == "alexnet") return NetworkId::kAlexNetS;
  if (s == "caffenet") return NetworkId::kCaffeNetS;
  if (s == "nin") return NetworkId::kNiNS;
  usage("unknown network");
}

numeric::DType parse_dtype(const std::string& s) {
  for (const auto t : numeric::kAllDTypes)
    if (s == numeric::dtype_name(t)) return t;
  usage("unknown dtype");
}

fault::SiteClass parse_site(const std::string& s) {
  for (const auto c : fault::kAllSiteClasses)
    if (s == fault::site_class_name(c)) return c;
  usage("unknown site");
}

struct Args {
  std::string command;
  NetworkId network = NetworkId::kConvNet;
  numeric::DType dtype = numeric::DType::kFloat16;
  fault::SiteClass site = fault::SiteClass::kDatapathLatch;
  std::size_t trials = 300;
  std::uint64_t seed = 1;
  std::size_t count = 20;
  std::optional<int> bit;
  std::optional<int> layer;
  std::optional<numeric::DType> storage;
  accel::AcceleratorConfig accel;
  fault::FaultOpSpec fault_op;
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  Args a;
  a.command = argv[1];
  bool have_network = false;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string val = argv[i + 1];
    if (key == "--network") {
      a.network = parse_network(val);
      have_network = true;
    } else if (key == "--dtype") {
      a.dtype = parse_dtype(val);
    } else if (key == "--site") {
      a.site = parse_site(val);
    } else if (key == "--trials") {
      a.trials = std::stoull(val);
    } else if (key == "--seed") {
      a.seed = std::stoull(val);
    } else if (key == "--count") {
      a.count = std::stoull(val);
    } else if (key == "--bit") {
      a.bit = std::stoi(val);
    } else if (key == "--layer") {
      a.layer = std::stoi(val);
    } else if (key == "--storage") {
      a.storage = parse_dtype(val);
    } else if (key == "--accel") {
      const auto cfg = accel::parse_accelerator(val);
      if (!cfg) usage("bad --accel (want eyeriss or systolic:<rows>x<cols>)");
      a.accel = *cfg;
    } else if (key == "--fault-op") {
      const auto spec = fault::FaultOpSpec::parse(val);
      if (!spec) usage("bad --fault-op (want toggle|set0|set1[:<n>|:0x<mask>])");
      a.fault_op = *spec;
    } else {
      usage(("unknown option " + key).c_str());
    }
  }
  if (!have_network) usage("--network is required");
  if (!accel::make_accelerator(a.accel)->supports(a.site))
    usage(("site " + std::string(fault::site_class_name(a.site)) +
           " is not in the " + a.accel.to_string() + " site inventory")
              .c_str());
  return a;
}

std::vector<dnn::Example> test_inputs(NetworkId id, std::size_t n) {
  const auto ds = data::dataset_for(id);
  std::vector<dnn::Example> v;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = ds->sample(data::kTestSplitBegin + i);
    v.push_back(dnn::Example{std::move(s.image), s.label});
  }
  return v;
}

int cmd_campaign(const Args& a) {
  const dnn::Model m = data::pretrained(a.network);
  fault::Campaign c(m.spec, m.blob, a.dtype, test_inputs(a.network, 8));
  fault::CampaignOptions opt;
  opt.trials = a.trials;
  opt.seed = a.seed;
  opt.site = a.site;
  opt.constraint.fixed_bit = a.bit;
  opt.constraint.fixed_block = a.layer;
  opt.constraint.buffer_storage = a.storage;
  opt.constraint.op_kind = a.fault_op.kind;
  opt.constraint.burst = a.fault_op.burst;
  opt.constraint.op_pattern = a.fault_op.pattern;
  opt.accel = a.accel;
  const auto r = c.run(opt);

  Table t("campaign: " + std::string(dnn::zoo::network_name(a.network)) + " " +
          std::string(numeric::dtype_name(a.dtype)) + " " +
          fault::site_class_name(a.site) + " n=" + std::to_string(a.trials));
  t.header({"metric", "value"});
  const auto row = [&t](const char* name, const fault::Estimate& e) {
    t.row({name, Table::pct_ci(e.p, e.ci95) + " (" + std::to_string(e.hits) +
                     "/" + std::to_string(e.n) + ")"});
  };
  row("SDC-1", r.sdc1());
  row("SDC-5", r.sdc5());
  row("SDC-10%", r.sdc10());
  row("SDC-20%", r.sdc20());
  row("reached output", r.rate([](const fault::TrialRecord& tr) {
        return tr.output_corruption > 0;
      }));
  t.print(std::cout);

  if (a.accel.is_eyeriss()) {
    const auto cfg = accel::eyeriss_16nm();
    double f;
    if (a.site == fault::SiteClass::kDatapathLatch) {
      f = fit::datapath_fit(a.dtype, cfg.num_pes, r.sdc1().p);
    } else {
      f = fit::buffer_fit(accel::analyze(m.spec), fault::buffer_of(a.site),
                          cfg, r.sdc1().p);
    }
    std::cout << "Eyeriss-16nm FIT for this component: " << f << "\n";
  } else if (a.site == fault::SiteClass::kDatapathLatch) {
    // Buffer FIT needs a per-buffer bit inventory, which only the Eyeriss
    // config carries; datapath FIT scales with the PE count alone.
    const double f = fit::datapath_fit(
        a.dtype, accel::make_accelerator(a.accel)->num_pes(), r.sdc1().p);
    std::cout << a.accel.to_string() << " datapath FIT (16nm latch rate): "
              << f << "\n";
  }
  return 0;
}

int cmd_profile(const Args& a) {
  const dnn::Model m = data::pretrained(a.network);
  const auto ds = data::dataset_for(a.network);
  const auto ranges = fault::profile_block_ranges(
      m.spec, m.blob, a.dtype,
      [&ds](std::uint64_t i) {
        auto s = ds->sample(i);
        return dnn::Example{std::move(s.image), s.label};
      },
      0, a.count);
  Table t("fault-free value ranges: " +
          std::string(dnn::zoo::network_name(a.network)) + " " +
          std::string(numeric::dtype_name(a.dtype)));
  t.header({"layer", "min", "max"});
  for (std::size_t b = 0; b < ranges.size(); ++b)
    t.row({std::to_string(b + 1), Table::num(ranges[b].lo, 4),
           Table::num(ranges[b].hi, 4)});
  t.print(std::cout);
  return 0;
}

int cmd_inject(const Args& a) {
  const dnn::Model m = data::pretrained(a.network);
  fault::Campaign c(m.spec, m.blob, a.dtype, test_inputs(a.network, 1));
  fault::CampaignOptions opt;
  opt.trials = 1;
  opt.seed = a.seed;
  opt.site = a.site;
  opt.constraint.fixed_bit = a.bit;
  opt.constraint.fixed_block = a.layer;
  opt.constraint.buffer_storage = a.storage;
  opt.constraint.op_kind = a.fault_op.kind;
  opt.constraint.burst = a.fault_op.burst;
  opt.constraint.op_pattern = a.fault_op.pattern;
  opt.accel = a.accel;
  const auto r = c.run(opt);
  const auto& tr = r.trials.front();
  std::cout << "fault:   " << tr.fault.describe() << "\n"
            << "value:   " << tr.record.corrupted_before << " -> "
            << tr.record.corrupted_after
            << (tr.record.zero_to_one ? "  (bit 0->1)" : "  (bit 1->0)") << "\n"
            << "outcome: "
            << (tr.outcome.sdc1 ? "SDC-1" : "benign/masked")
            << (tr.outcome.sdc5 ? " SDC-5" : "")
            << (tr.outcome.sdc10 ? " SDC-10%" : "")
            << (tr.outcome.sdc20 ? " SDC-20%" : "") << "\n"
            << "output corruption: " << tr.output_corruption * 100 << "% of final ACTs\n";
  return 0;
}

int cmd_info(const Args& a) {
  const dnn::Model m = data::pretrained(a.network);
  const auto fp = accel::analyze(m.spec);
  std::cout << "network: " << m.spec.name << "\n"
            << "input:   " << m.spec.input.c << "x" << m.spec.input.h << "x"
            << m.spec.input.w << ", classes " << m.spec.num_classes << "\n"
            << "logical layers: " << m.spec.num_blocks() << "\n";
  Table t("MAC-layer footprints");
  t.header({"layer", "kind", "in elems", "weights", "out elems", "MACs"});
  for (const auto& f : fp)
    t.row({std::to_string(f.block), f.is_conv ? "conv" : "fc",
           std::to_string(f.input_elems), std::to_string(f.weight_elems),
           std::to_string(f.output_elems), std::to_string(f.macs)});
  t.print(std::cout);
  std::cout << "total MACs: " << accel::total_macs(fp) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.command == "campaign") return cmd_campaign(a);
    if (a.command == "profile") return cmd_profile(a);
    if (a.command == "inject") return cmd_inject(a);
    if (a.command == "info") return cmd_info(a);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
